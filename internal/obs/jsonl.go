package obs

import (
	"bufio"
	"io"
	"strconv"
	"time"
)

// RunMeta heads one run's section of a JSONL trace export.
type RunMeta struct {
	// Label names the configuration (core's Config.Label()).
	Label string
	// Run is the campaign run index.
	Run int
	// Seed is the run's resolved seed.
	Seed int64
	// Duration is the run length.
	Duration time.Duration
	// Events is the total emitted event count; Dropped is how many a
	// bounded ring overwrote.
	Events  int64
	Dropped int64
}

// WriteJSONL writes one run's trace: a meta line followed by one line per
// event, in emission order. The rendering is hand-built with a fixed key
// order and strconv formatting, so the bytes are a pure function of the
// values — the property the golden-trace suite and the serial-vs-parallel
// determinism check rely on.
func WriteJSONL(w io.Writer, meta RunMeta, events []Event) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)

	buf = append(buf, `{"kind":"meta","label":`...)
	buf = strconv.AppendQuote(buf, meta.Label)
	buf = append(buf, `,"run":`...)
	buf = strconv.AppendInt(buf, int64(meta.Run), 10)
	buf = append(buf, `,"seed":`...)
	buf = strconv.AppendInt(buf, meta.Seed, 10)
	buf = append(buf, `,"duration_us":`...)
	buf = strconv.AppendInt(buf, meta.Duration.Microseconds(), 10)
	buf = append(buf, `,"events":`...)
	buf = strconv.AppendInt(buf, meta.Events, 10)
	buf = append(buf, `,"dropped":`...)
	buf = strconv.AppendInt(buf, meta.Dropped, 10)
	buf = append(buf, "}\n"...)
	if _, err := bw.Write(buf); err != nil {
		return err
	}

	for i := range events {
		buf = appendEventJSON(buf[:0], &events[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendEventJSON renders one event line. Key order is fixed: t_us, kind,
// dir (omitted for DirNone), ctrl (omitted unless set), rtx (omitted
// unless set), seq, aux, v (omitted when zero).
func appendEventJSON(buf []byte, ev *Event) []byte {
	buf = append(buf, `{"t_us":`...)
	buf = strconv.AppendInt(buf, ev.T.Microseconds(), 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, ev.Kind.String()...)
	buf = append(buf, '"')
	if d := ev.Dir.String(); d != "" {
		buf = append(buf, `,"dir":"`...)
		buf = append(buf, d...)
		buf = append(buf, '"')
	}
	if ev.Flags&FlagCtrl != 0 {
		buf = append(buf, `,"ctrl":true`...)
	}
	if ev.Flags&FlagRTX != 0 {
		buf = append(buf, `,"rtx":true`...)
	}
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendInt(buf, ev.Seq, 10)
	buf = append(buf, `,"aux":`...)
	buf = strconv.AppendInt(buf, ev.Aux, 10)
	if ev.V != 0 {
		buf = append(buf, `,"v":`...)
		buf = strconv.AppendFloat(buf, ev.V, 'g', -1, 64)
	}
	return append(buf, "}\n"...)
}
