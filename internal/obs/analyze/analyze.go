// Package analyze turns raw trace events into the paper's derived analyses:
// per-second time series (the Fig. 8 handover timeline), handover- and
// RLF-aligned epoch windows (the Fig. 9 pre/post latency-ratio statistic),
// outage episodes and repair summaries — computed from events alone, so the
// same analysis runs against a live run's tracer or a JSONL trace replayed
// from disk.
//
// Determinism contract: every time quantity is reduced to integer
// microseconds (the JSONL writer's granularity) before any arithmetic, and
// float accumulation follows the trace's event order. A live tracer feed
// and its JSONL round-trip therefore produce byte-identical report bundles
// — the property rpbench's -report path and the regression suite pin.
package analyze

import (
	"math"
	"time"

	"rpivideo/internal/obs"
)

const (
	usPerSecond = int64(time.Second / time.Microsecond)
	// windowUs is the Fig. 9 epoch window length: one second on each side
	// of the handover (before onset; after completion).
	windowUs = usPerSecond
)

// Second is one second-aligned bin of a run's trace: media-plane packet and
// delay statistics plus the event counts a timeline plot annotates.
// OWD statistics cover delivered first-transmission media packets on the
// uplink (control and RTX traffic excluded) — the same sample set the
// paper's latency figures use.
type Second struct {
	// T is the bin index: events with T/1s == T land here.
	T int64 `json:"t_s"`

	OWDSamples int64   `json:"owd_samples"`
	OWDMinMs   float64 `json:"owd_min_ms"`
	OWDMeanMs  float64 `json:"owd_mean_ms"`
	OWDMaxMs   float64 `json:"owd_max_ms"`

	// GoodputMbps is delivered media wire bytes in the bin, in Mbit/s.
	GoodputMbps float64 `json:"goodput_mbps"`
	// TargetMbps is the last congestion-controller target set in the bin
	// (0 when the bin saw no CC decision).
	TargetMbps float64 `json:"target_mbps"`

	Sent    int64 `json:"sent"`
	Recv    int64 `json:"recv"`
	Dropped int64 `json:"dropped"`

	Handovers     int64 `json:"handovers"`
	RLFs          int64 `json:"rlfs"`
	Stalls        int64 `json:"stalls"`
	FramesPlayed  int64 `json:"frames_played"`
	FramesSkipped int64 `json:"frames_skipped"`

	owdSumMs float64
}

// Epoch is one radio event's aligned analysis window: the Fig. 9 statistic.
// The pre window is the second before the event's onset, the post window
// the second after its completion (onset + gap). A ratio is valid only when
// its window holds at least one OWD sample with a positive minimum.
type Epoch struct {
	// Kind is "handover" or "rlf".
	Kind string `json:"kind"`
	// AtUs is the event's onset time.
	AtUs int64 `json:"at_us"`
	// GapUs is the service gap: handover execution time, or the RLF
	// blackout (both quantized from the event's millisecond payload).
	GapUs int64 `json:"gap_us"`
	// Src and Dst are the cells involved (handover only; Src is the
	// serving cell for an RLF).
	Src int64 `json:"src"`
	Dst int64 `json:"dst"`

	PreRatio    float64 `json:"pre_ratio"`
	PreOK       bool    `json:"pre_ok"`
	PreSamples  int64   `json:"pre_samples"`
	PostRatio   float64 `json:"post_ratio"`
	PostOK      bool    `json:"post_ok"`
	PostSamples int64   `json:"post_samples"`
}

// Outage is one service interruption observed on a link direction, paired
// from outage-start/outage-end events.
type Outage struct {
	// Dir is the link the outage was observed on ("" for the primary
	// radio chain).
	Dir     string `json:"dir"`
	StartUs int64  `json:"start_us"`
	// EndUs is the resumption time; for an outage still open when the
	// trace ends it is the run duration, with Open set.
	EndUs int64 `json:"end_us"`
	Open  bool  `json:"open,omitempty"`
}

// DurationUs returns the outage length.
func (o Outage) DurationUs() int64 { return o.EndUs - o.StartUs }

// RepairSummary aggregates the NACK/RTX repair layer's trace events.
type RepairSummary struct {
	NacksSent     int64 `json:"nacks_sent"`
	RtxSent       int64 `json:"rtx_sent"`
	RepairedByRtx int64 `json:"repaired_by_rtx"`
	RepairedLate  int64 `json:"repaired_late"`
	Abandoned     int64 `json:"abandoned"`

	// Loss-to-heal delay over all repaired packets, in milliseconds.
	HealMinMs  float64 `json:"heal_min_ms"`
	HealMeanMs float64 `json:"heal_mean_ms"`
	HealMaxMs  float64 `json:"heal_max_ms"`

	healSumMs float64
}

// RunAnalysis is the full derived analysis of one run's trace.
type RunAnalysis struct {
	Meta    obs.RunMeta
	Seconds []Second
	Epochs  []Epoch
	Outages []Outage
	Repair  RepairSummary

	// owd keeps the media OWD samples at microsecond timestamps for the
	// epoch-window queries; it is not exported with the bundle.
	owd []owdSample
}

type owdSample struct {
	tUs int64
	ms  float64
}

// mediaOWD reports whether ev carries a one-way-delay sample of the media
// plane: a delivered first-transmission uplink media packet.
func mediaOWD(ev *obs.Event) bool {
	return ev.Kind == obs.KindRecv && ev.Dir == obs.DirUp && ev.Flags == 0
}

// msToUs quantizes a millisecond float payload (HET, blackout length) to
// integer microseconds.
func msToUs(ms float64) int64 { return int64(math.Round(ms * 1000)) }

// Run analyzes one run's events under its meta header. Events must be in
// emission order (simulation-time order), which both the tracer and the
// JSONL reader guarantee.
func Run(meta obs.RunMeta, events []obs.Event) *RunAnalysis {
	a := &RunAnalysis{Meta: meta}
	durUs := meta.Duration.Microseconds()
	nBins := durUs / usPerSecond
	if durUs%usPerSecond != 0 {
		nBins++
	}
	if nBins < 1 {
		nBins = 1
	}
	a.Seconds = make([]Second, nBins)
	for i := range a.Seconds {
		a.Seconds[i].T = int64(i)
	}
	bin := func(tUs int64) *Second {
		i := tUs / usPerSecond
		if i < 0 {
			i = 0
		}
		if i >= nBins {
			i = nBins - 1
		}
		return &a.Seconds[i]
	}

	open := make(map[obs.Dir]int64) // outage start per direction

	for i := range events {
		ev := &events[i]
		tUs := ev.T.Microseconds()
		b := bin(tUs)
		switch ev.Kind {
		case obs.KindSend:
			if ev.Flags == 0 && ev.Dir == obs.DirUp {
				b.Sent++
			}
		case obs.KindRecv:
			if mediaOWD(ev) {
				b.Recv++
				b.GoodputMbps += float64(ev.Aux) * 8 / 1e6
				b.OWDSamples++
				b.owdSumMs += ev.V
				if b.OWDSamples == 1 || ev.V < b.OWDMinMs {
					b.OWDMinMs = ev.V
				}
				if b.OWDSamples == 1 || ev.V > b.OWDMaxMs {
					b.OWDMaxMs = ev.V
				}
				a.owd = append(a.owd, owdSample{tUs: tUs, ms: ev.V})
			}
		case obs.KindDrop:
			if ev.Flags == 0 && ev.Dir == obs.DirUp {
				b.Dropped++
			}
		case obs.KindHandover:
			b.Handovers++
			a.Epochs = append(a.Epochs, Epoch{
				Kind: "handover", AtUs: tUs, GapUs: msToUs(ev.V),
				Src: ev.Seq, Dst: ev.Aux,
			})
		case obs.KindRLF:
			b.RLFs++
			a.Epochs = append(a.Epochs, Epoch{
				Kind: "rlf", AtUs: tUs, GapUs: msToUs(ev.V), Src: ev.Seq,
			})
		case obs.KindCC:
			b.TargetMbps = ev.V / 1e6
		case obs.KindStall:
			b.Stalls++
		case obs.KindFramePlay:
			b.FramesPlayed++
		case obs.KindFrameSkip:
			b.FramesSkipped++
		case obs.KindOutageStart:
			if _, dup := open[ev.Dir]; !dup {
				open[ev.Dir] = tUs
			}
		case obs.KindOutageEnd:
			if start, ok := open[ev.Dir]; ok {
				delete(open, ev.Dir)
				a.Outages = append(a.Outages, Outage{Dir: ev.Dir.String(), StartUs: start, EndUs: tUs})
			}
		case obs.KindNack:
			a.Repair.NacksSent++
		case obs.KindRTX:
			a.Repair.RtxSent++
		case obs.KindRepairOK:
			if ev.Aux == 1 {
				a.Repair.RepairedByRtx++
			} else {
				a.Repair.RepairedLate++
			}
			n := a.Repair.RepairedByRtx + a.Repair.RepairedLate
			a.Repair.healSumMs += ev.V
			if n == 1 || ev.V < a.Repair.HealMinMs {
				a.Repair.HealMinMs = ev.V
			}
			if n == 1 || ev.V > a.Repair.HealMaxMs {
				a.Repair.HealMaxMs = ev.V
			}
		case obs.KindRepairAbandoned:
			a.Repair.Abandoned++
		}
	}

	// Outages still open when the trace ends run to the end of the run.
	// Map iteration order is random, so collect deterministically by Dir.
	for _, dir := range []obs.Dir{obs.DirNone, obs.DirUp, obs.DirDown, obs.DirUp2} {
		if start, ok := open[dir]; ok {
			a.Outages = append(a.Outages, Outage{Dir: dir.String(), StartUs: start, EndUs: durUs, Open: true})
		}
	}

	// Finish the per-second means.
	for i := range a.Seconds {
		if s := &a.Seconds[i]; s.OWDSamples > 0 {
			s.OWDMeanMs = s.owdSumMs / float64(s.OWDSamples)
		}
	}
	if n := a.Repair.RepairedByRtx + a.Repair.RepairedLate; n > 0 {
		a.Repair.HealMeanMs = a.Repair.healSumMs / float64(n)
	}

	// Fill the epoch windows now that all OWD samples are collected.
	for i := range a.Epochs {
		e := &a.Epochs[i]
		e.PreRatio, e.PreSamples, e.PreOK = a.windowRatio(e.AtUs-windowUs, e.AtUs)
		end := e.AtUs + e.GapUs
		e.PostRatio, e.PostSamples, e.PostOK = a.windowRatio(end, end+windowUs)
	}
	return a
}

// windowRatio computes max/min OWD over samples with from ≤ t < to. It
// mirrors metrics.TimeSeries.WindowMaxMinRatio: no samples or a
// non-positive minimum yields ok=false.
func (a *RunAnalysis) windowRatio(fromUs, toUs int64) (ratio float64, n int64, ok bool) {
	var min, max float64
	for _, s := range a.owd {
		if s.tUs < fromUs || s.tUs >= toUs {
			continue
		}
		if n == 0 || s.ms < min {
			min = s.ms
		}
		if n == 0 || s.ms > max {
			max = s.ms
		}
		n++
	}
	if n == 0 || min <= 0 {
		return 0, n, false
	}
	return max / min, n, true
}

// Trace analyzes every run of a parsed JSONL trace.
func Trace(runs []obs.TraceRun) []*RunAnalysis {
	out := make([]*RunAnalysis, len(runs))
	for i, r := range runs {
		out[i] = Run(r.Meta, r.Events)
	}
	return out
}

// RatioStats aggregates one side of the Fig. 9 statistic across runs.
type RatioStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`

	sum float64
}

func (r *RatioStats) add(v float64) {
	r.Count++
	r.sum += v
	if r.Count == 1 || v < r.Min {
		r.Min = v
	}
	if r.Count == 1 || v > r.Max {
		r.Max = v
	}
	r.Mean = r.sum / float64(r.Count)
}

// Fig9 folds every valid epoch window of the analyzed runs (in run order,
// then event order) into the pre/post ratio aggregate.
func Fig9(runs []*RunAnalysis) (pre, post RatioStats) {
	for _, a := range runs {
		for _, e := range a.Epochs {
			if e.Kind != "handover" {
				continue
			}
			if e.PreOK {
				pre.add(e.PreRatio)
			}
			if e.PostOK {
				post.add(e.PostRatio)
			}
		}
	}
	return pre, post
}
