package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// ReportSchema versions the bundle layout. Bump it when a file, column or
// field changes meaning; the consumer side (plot scripts, the regression
// suite) keys on it.
const ReportSchema = "rpbench-report/v1"

// Bundle file names under the report directory.
const (
	SeriesCSV   = "series.csv"
	EpochsCSV   = "epochs.csv"
	OutagesCSV  = "outages.csv"
	SummaryJSON = "summary.json"
)

// runSummary is one run's roll-up inside summary.json.
type runSummary struct {
	Label         string        `json:"label"`
	Run           int           `json:"run"`
	Seed          int64         `json:"seed"`
	DurationUs    int64         `json:"duration_us"`
	Events        int64         `json:"events"`
	Dropped       int64         `json:"dropped"`
	OWDSamples    int64         `json:"owd_samples"`
	Handovers     int64         `json:"handovers"`
	RLFs          int64         `json:"rlfs"`
	Stalls        int64         `json:"stalls"`
	FramesPlayed  int64         `json:"frames_played"`
	FramesSkipped int64         `json:"frames_skipped"`
	Outages       int           `json:"outages"`
	Repair        RepairSummary `json:"repair"`
}

type reportSummary struct {
	Schema string       `json:"schema"`
	Runs   []runSummary `json:"runs"`
	Fig9   struct {
		Pre  RatioStats `json:"pre"`
		Post RatioStats `json:"post"`
	} `json:"fig9"`
}

// WriteBundle renders the analyzed runs as a report bundle under dir
// (created if absent): three CSV time-series/event files plus a
// summary.json roll-up. All rendering is fixed-order with strconv/encoding-
// json formatting, so the bundle bytes are a pure function of the analyses
// — the live-vs-replay bit-identity contract extends through to disk.
func WriteBundle(dir string, runs []*RunAnalysis) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("analyze: creating report dir: %w", err)
	}
	if err := writeFile(dir, SeriesCSV, func(w *bufio.Writer) error {
		return writeSeriesCSV(w, runs)
	}); err != nil {
		return err
	}
	if err := writeFile(dir, EpochsCSV, func(w *bufio.Writer) error {
		return writeEpochsCSV(w, runs)
	}); err != nil {
		return err
	}
	if err := writeFile(dir, OutagesCSV, func(w *bufio.Writer) error {
		return writeOutagesCSV(w, runs)
	}); err != nil {
		return err
	}
	return writeFile(dir, SummaryJSON, func(w *bufio.Writer) error {
		return writeSummaryJSON(w, runs)
	})
}

func writeFile(dir, name string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return fmt.Errorf("analyze: writing %s: %w", name, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("analyze: writing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("analyze: writing %s: %w", name, err)
	}
	return nil
}

// row builds one CSV record with strconv formatting: floats as shortest
// round-trippable 'g', bools as 0/1.
type row struct{ buf []byte }

func (r *row) str(s string)  { r.sep(); r.buf = append(r.buf, s...) }
func (r *row) int(v int64)   { r.sep(); r.buf = strconv.AppendInt(r.buf, v, 10) }
func (r *row) f64(v float64) { r.sep(); r.buf = strconv.AppendFloat(r.buf, v, 'g', -1, 64) }
func (r *row) bool01(b bool) {
	v := int64(0)
	if b {
		v = 1
	}
	r.int(v)
}
func (r *row) sep() {
	if len(r.buf) > 0 {
		r.buf = append(r.buf, ',')
	}
}
func (r *row) write(w *bufio.Writer) error {
	r.buf = append(r.buf, '\n')
	_, err := w.Write(r.buf)
	r.buf = r.buf[:0]
	return err
}

func writeSeriesCSV(w *bufio.Writer, runs []*RunAnalysis) error {
	if _, err := w.WriteString("label,run,t_s,owd_samples,owd_min_ms,owd_mean_ms,owd_max_ms,goodput_mbps,target_mbps,sent,recv,dropped,handovers,rlfs,stalls,frames_played,frames_skipped\n"); err != nil {
		return err
	}
	var r row
	for _, a := range runs {
		for i := range a.Seconds {
			s := &a.Seconds[i]
			r.str(a.Meta.Label)
			r.int(int64(a.Meta.Run))
			r.int(s.T)
			r.int(s.OWDSamples)
			r.f64(s.OWDMinMs)
			r.f64(s.OWDMeanMs)
			r.f64(s.OWDMaxMs)
			r.f64(s.GoodputMbps)
			r.f64(s.TargetMbps)
			r.int(s.Sent)
			r.int(s.Recv)
			r.int(s.Dropped)
			r.int(s.Handovers)
			r.int(s.RLFs)
			r.int(s.Stalls)
			r.int(s.FramesPlayed)
			r.int(s.FramesSkipped)
			if err := r.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeEpochsCSV(w *bufio.Writer, runs []*RunAnalysis) error {
	if _, err := w.WriteString("label,run,kind,at_us,gap_us,src,dst,pre_ratio,pre_ok,pre_samples,post_ratio,post_ok,post_samples\n"); err != nil {
		return err
	}
	var r row
	for _, a := range runs {
		for _, e := range a.Epochs {
			r.str(a.Meta.Label)
			r.int(int64(a.Meta.Run))
			r.str(e.Kind)
			r.int(e.AtUs)
			r.int(e.GapUs)
			r.int(e.Src)
			r.int(e.Dst)
			r.f64(e.PreRatio)
			r.bool01(e.PreOK)
			r.int(e.PreSamples)
			r.f64(e.PostRatio)
			r.bool01(e.PostOK)
			r.int(e.PostSamples)
			if err := r.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeOutagesCSV(w *bufio.Writer, runs []*RunAnalysis) error {
	if _, err := w.WriteString("label,run,dir,start_us,end_us,duration_us,open\n"); err != nil {
		return err
	}
	var r row
	for _, a := range runs {
		for _, o := range a.Outages {
			r.str(a.Meta.Label)
			r.int(int64(a.Meta.Run))
			r.str(o.Dir)
			r.int(o.StartUs)
			r.int(o.EndUs)
			r.int(o.DurationUs())
			r.bool01(o.Open)
			if err := r.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSummaryJSON(w *bufio.Writer, runs []*RunAnalysis) error {
	sum := reportSummary{Schema: ReportSchema, Runs: make([]runSummary, 0, len(runs))}
	for _, a := range runs {
		rs := runSummary{
			Label:      a.Meta.Label,
			Run:        a.Meta.Run,
			Seed:       a.Meta.Seed,
			DurationUs: a.Meta.Duration.Microseconds(),
			Events:     a.Meta.Events,
			Dropped:    a.Meta.Dropped,
			Outages:    len(a.Outages),
			Repair:     a.Repair,
		}
		for i := range a.Seconds {
			s := &a.Seconds[i]
			rs.OWDSamples += s.OWDSamples
			rs.Handovers += s.Handovers
			rs.RLFs += s.RLFs
			rs.Stalls += s.Stalls
			rs.FramesPlayed += s.FramesPlayed
			rs.FramesSkipped += s.FramesSkipped
		}
		sum.Runs = append(sum.Runs, rs)
	}
	sum.Fig9.Pre, sum.Fig9.Post = Fig9(runs)
	out, err := json.MarshalIndent(&sum, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(out); err != nil {
		return err
	}
	return w.WriteByte('\n')
}
