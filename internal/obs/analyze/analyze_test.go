package analyze

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/obs"
)

func us(v int64) time.Duration { return time.Duration(v) * time.Microsecond }

// TestAnalyzeSynthetic pins the analyzer's arithmetic on a hand-built
// trace: bin assignment, OWD stats, the Fig. 9 window ratios, outage
// pairing (including a still-open outage) and the repair roll-up.
func TestAnalyzeSynthetic(t *testing.T) {
	meta := obs.RunMeta{Label: "synthetic", Run: 3, Seed: 42, Duration: 4 * time.Second, Events: 14}
	events := []obs.Event{
		// Second 0: two OWD samples, one ctrl recv (excluded), one send/drop.
		{T: us(100_000), Kind: obs.KindSend, Dir: obs.DirUp, Seq: 1, Aux: 1200},
		{T: us(130_000), Kind: obs.KindRecv, Dir: obs.DirUp, Seq: 1, Aux: 1200, V: 30},
		{T: us(200_000), Kind: obs.KindRecv, Dir: obs.DirUp, Seq: 2, Aux: 800, V: 60},
		{T: us(250_000), Kind: obs.KindRecv, Dir: obs.DirDown, Flags: obs.FlagCtrl, Seq: 9, Aux: 64, V: 25},
		{T: us(300_000), Kind: obs.KindDrop, Dir: obs.DirUp, Seq: 3, Aux: 1},
		// Handover at t=1.5s with HET 80 ms: pre window [0.5s,1.5s) holds
		// samples 40 and 120 (ratio 3), post window [1.58s,2.58s) holds 50
		// and 100 (ratio 2).
		{T: us(600_000), Kind: obs.KindRecv, Dir: obs.DirUp, Seq: 4, Aux: 500, V: 40},
		{T: us(1_400_000), Kind: obs.KindRecv, Dir: obs.DirUp, Seq: 5, Aux: 500, V: 120},
		{T: us(1_500_000), Kind: obs.KindHandover, Seq: 7, Aux: 8, V: 80},
		{T: us(1_600_000), Kind: obs.KindRecv, Dir: obs.DirUp, Seq: 6, Aux: 500, V: 50},
		{T: us(2_500_000), Kind: obs.KindRecv, Dir: obs.DirUp, Seq: 7, Aux: 500, V: 100},
		// Closed outage on the uplink, open outage on the second chain.
		{T: us(1_500_000), Kind: obs.KindOutageStart, Dir: obs.DirUp},
		{T: us(1_580_000), Kind: obs.KindOutageEnd, Dir: obs.DirUp},
		{T: us(3_000_000), Kind: obs.KindOutageStart, Dir: obs.DirUp2},
		// Repair events.
		{T: us(3_100_000), Kind: obs.KindNack, Seq: 10, Aux: 2},
		{T: us(3_150_000), Kind: obs.KindRTX, Seq: 10, Aux: 1200},
		{T: us(3_200_000), Kind: obs.KindRepairOK, Seq: 10, Aux: 1, V: 90},
		{T: us(3_250_000), Kind: obs.KindRepairOK, Seq: 11, Aux: 0, V: 30},
		{T: us(3_300_000), Kind: obs.KindRepairAbandoned, Seq: 12, Aux: 3},
	}
	a := Run(meta, events)

	if len(a.Seconds) != 4 {
		t.Fatalf("bins = %d, want 4", len(a.Seconds))
	}
	s0 := a.Seconds[0]
	if s0.Sent != 1 || s0.Recv != 3 || s0.Dropped != 1 {
		t.Errorf("second 0 sent/recv/drop = %d/%d/%d, want 1/3/1", s0.Sent, s0.Recv, s0.Dropped)
	}
	if s0.OWDSamples != 3 || s0.OWDMinMs != 30 || s0.OWDMaxMs != 60 {
		t.Errorf("second 0 OWD = n%d min%g max%g, want n3 min30 max60", s0.OWDSamples, s0.OWDMinMs, s0.OWDMaxMs)
	}
	if want := (30.0 + 60 + 40) / 3; s0.OWDMeanMs != want {
		t.Errorf("second 0 OWD mean = %g, want %g", s0.OWDMeanMs, want)
	}
	if want := float64(1200+800+500) * 8 / 1e6; s0.GoodputMbps != want {
		t.Errorf("second 0 goodput = %g, want %g", s0.GoodputMbps, want)
	}
	if a.Seconds[1].Handovers != 1 {
		t.Errorf("handover not binned into second 1")
	}

	if len(a.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1", len(a.Epochs))
	}
	e := a.Epochs[0]
	if e.Kind != "handover" || e.AtUs != 1_500_000 || e.GapUs != 80_000 || e.Src != 7 || e.Dst != 8 {
		t.Errorf("epoch = %+v", e)
	}
	if !e.PreOK || e.PreSamples != 2 || e.PreRatio != 3 {
		t.Errorf("pre window = ratio %g ok %v n %d, want 3/true/2", e.PreRatio, e.PreOK, e.PreSamples)
	}
	if !e.PostOK || e.PostSamples != 2 || e.PostRatio != 2 {
		t.Errorf("post window = ratio %g ok %v n %d, want 2/true/2", e.PostRatio, e.PostOK, e.PostSamples)
	}

	wantOutages := []Outage{
		{Dir: "up", StartUs: 1_500_000, EndUs: 1_580_000},
		{Dir: "up2", StartUs: 3_000_000, EndUs: 4_000_000, Open: true},
	}
	if len(a.Outages) != len(wantOutages) {
		t.Fatalf("outages = %+v", a.Outages)
	}
	for i, want := range wantOutages {
		if a.Outages[i] != want {
			t.Errorf("outage %d = %+v, want %+v", i, a.Outages[i], want)
		}
	}

	r := a.Repair
	if r.NacksSent != 1 || r.RtxSent != 1 || r.RepairedByRtx != 1 || r.RepairedLate != 1 || r.Abandoned != 1 {
		t.Errorf("repair = %+v", r)
	}
	if r.HealMinMs != 30 || r.HealMaxMs != 90 || r.HealMeanMs != 60 {
		t.Errorf("heal stats = %g/%g/%g, want 30/60/90", r.HealMinMs, r.HealMeanMs, r.HealMaxMs)
	}

	pre, post := Fig9([]*RunAnalysis{a})
	if pre.Count != 1 || pre.Mean != 3 || post.Count != 1 || post.Mean != 2 {
		t.Errorf("Fig9 = pre %+v post %+v", pre, post)
	}
}

// TestWindowRatioInvalid: empty windows and non-positive minima are not
// valid ratios.
func TestWindowRatioInvalid(t *testing.T) {
	meta := obs.RunMeta{Duration: 3 * time.Second}
	a := Run(meta, []obs.Event{
		{T: us(1_500_000), Kind: obs.KindHandover, V: 50},
		{T: us(1_700_000), Kind: obs.KindRecv, Dir: obs.DirUp, V: 0}, // min ≤ 0
	})
	e := a.Epochs[0]
	if e.PreOK || e.PreSamples != 0 {
		t.Errorf("empty pre window reported OK: %+v", e)
	}
	if e.PostOK || e.PostSamples != 1 {
		t.Errorf("zero-min post window reported OK: %+v", e)
	}
}

func readBundle(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{SeriesCSV, EpochsCSV, OutagesCSV, SummaryJSON} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		out[name] = b
	}
	return out
}

// TestLiveVsReplayBitIdentical is the headline acceptance check: analyzing
// a run's live tracer feed and analyzing its JSONL export must produce
// byte-identical report bundles.
func TestLiveVsReplayBitIdentical(t *testing.T) {
	cfg := core.Config{Env: cell.Urban, Air: true, CC: core.CCGCC, Seed: 11, Duration: 30 * time.Second, Trace: true}
	r := core.Run(cfg)

	// Live path: meta and events straight from the run's tracer.
	live := []*RunAnalysis{Run(core.TraceRunMeta(r, 0), r.Trace.Events())}
	liveDir := t.TempDir()
	if err := WriteBundle(liveDir, live); err != nil {
		t.Fatal(err)
	}

	// Replay path: JSONL export, parsed back, analyzed.
	var buf bytes.Buffer
	if err := core.WriteCampaignTrace(&buf, []*core.Result{r}); err != nil {
		t.Fatal(err)
	}
	runs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayDir := t.TempDir()
	if err := WriteBundle(replayDir, Trace(runs)); err != nil {
		t.Fatal(err)
	}

	a, b := readBundle(t, liveDir), readBundle(t, replayDir)
	for name := range a {
		if !bytes.Equal(a[name], b[name]) {
			t.Errorf("%s differs between live and replay analysis", name)
		}
	}

	// The run must actually exercise the interesting paths, or the
	// bit-identity above is vacuous.
	if len(live[0].owd) == 0 {
		t.Error("no OWD samples analyzed")
	}
	var handovers int64
	for _, s := range live[0].Seconds {
		handovers += s.Handovers
	}
	if handovers == 0 {
		t.Error("run produced no handovers; pick a longer duration or different seed")
	}
	pre, post := Fig9(live)
	if pre.Count == 0 || post.Count == 0 {
		t.Errorf("Fig9 windows empty: pre %+v post %+v", pre, post)
	}
	if math.IsNaN(pre.Mean) || math.IsNaN(post.Mean) {
		t.Errorf("Fig9 means NaN: %g / %g", pre.Mean, post.Mean)
	}
}
