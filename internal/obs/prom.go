package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// PromNamespace prefixes every metric the Prometheus writer emits, so a
// shared scrape target can never collide with another exporter's names.
const PromNamespace = "rpivideo"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the repo takes no client_golang
// dependency. The output is deterministic: families are grouped by kind
// (counters, then gauges, then fixed-bucket histograms, then log-bucketed
// histograms), sorted by name within each kind, and the only label (`le`)
// ascends — two snapshots of equal registries are byte-identical.
//
// Mapping:
//   - counter <name>  → rpivideo_<name>_total
//   - gauge <name>    → rpivideo_<name>
//   - histogram       → rpivideo_<name>_bucket{le="…"} cumulative series
//     (fixed-bucket overflow and log-histogram tails land in le="+Inf"),
//     plus rpivideo_<name>_sum and rpivideo_<name>_count
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	for _, name := range sortedKeys(r.counters) {
		fq := PromNamespace + "_" + sanitizeMetricName(name) + "_total"
		writeHeader(bw, fq, "counter")
		writeSample(bw, fq, "", float64(r.counters[name]))
	}
	for _, name := range sortedKeys(r.gauges) {
		fq := PromNamespace + "_" + sanitizeMetricName(name)
		writeHeader(bw, fq, "gauge")
		writeSample(bw, fq, "", r.gauges[name])
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		fq := PromNamespace + "_" + sanitizeMetricName(name)
		writeHeader(bw, fq, "histogram")
		var cum int64
		for i, edge := range h.Buckets {
			cum += h.Counts[i]
			writeSample(bw, fq+"_bucket", `le="`+formatFloat(edge)+`"`, float64(cum))
		}
		writeSample(bw, fq+"_bucket", `le="+Inf"`, float64(h.Count))
		writeSample(bw, fq+"_sum", "", h.Sum)
		writeSample(bw, fq+"_count", "", float64(h.Count))
	}
	for _, name := range sortedKeys(r.logs) {
		h := r.logs[name]
		fq := PromNamespace + "_" + sanitizeMetricName(name)
		writeHeader(bw, fq, "histogram")
		// The zero cell (non-positive samples) is below every positive
		// edge, so it seeds the cumulative count.
		cum := h.zero
		h.each(func(_ int32, upper float64, count int64) {
			cum += count
			writeSample(bw, fq+"_bucket", `le="`+formatFloat(upper)+`"`, float64(cum))
		})
		writeSample(bw, fq+"_bucket", `le="+Inf"`, float64(h.count))
		writeSample(bw, fq+"_sum", "", h.sum)
		writeSample(bw, fq+"_count", "", float64(h.count))
	}
	return bw.Flush()
}

// writeHeader emits the HELP/TYPE preamble for one family. HELP text is
// the metric's registry name — the registry carries no free-text help, and
// an empty HELP line trips some linters.
func writeHeader(w *bufio.Writer, fq, typ string) {
	w.WriteString("# HELP " + fq + " " + fq + "\n")
	w.WriteString("# TYPE " + fq + " " + typ + "\n")
}

// writeSample emits one sample line, with an optional single label pair.
func writeSample(w *bufio.Writer, fq, label string, v float64) {
	w.WriteString(fq)
	if label != "" {
		w.WriteString("{" + label + "}")
	}
	w.WriteString(" " + formatFloat(v) + "\n")
}

// formatFloat renders a float in its shortest round-tripping form — the
// same convention encoding/json uses, so numbers match the JSON exports.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_]. Registry names are already clean snake_case; this
// guards the format against future names rather than rewriting them.
func sanitizeMetricName(name string) string {
	clean := true
	for i := 0; i < len(name); i++ {
		if !isMetricChar(name[i]) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	out := []byte(name)
	for i, c := range out {
		if !isMetricChar(c) {
			out[i] = '_'
		}
	}
	return string(out)
}

func isMetricChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
