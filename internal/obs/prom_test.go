package obs

import (
	"bytes"
	"strings"
	"testing"
)

func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Add("packets_sent", 120)
	r.Add("packets_delivered", 118)
	r.SetGauge("peak_queue_ms", 41.5)
	h := r.Histogram("owl_ms", LatencyMsBuckets)
	for _, v := range []float64{3, 18, 18, 90, 20000} {
		h.Observe(v)
	}
	lh := r.LogHistogram("frame_delay_ms")
	for _, v := range []float64{0, 12, 12.04, 55, 700} {
		lh.Observe(v)
	}
	return r
}

// TestWritePrometheusDeterministic: two snapshots of equal registries render
// byte-identically — kinds grouped, names sorted, le ascending. This is the
// scrape-stability guarantee: a diff between consecutive scrapes is a metric
// change, never map-iteration noise.
func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&a); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := promTestRegistry().Clone().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus(clone): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two snapshots differ:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	if err := checkPromExposition(a.String()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, a.String())
	}
}

// TestWritePrometheusMapping: each registry kind lands under the documented
// name mapping with the namespace prefix.
func TestWritePrometheusMapping(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE rpivideo_packets_sent_total counter",
		"rpivideo_packets_sent_total 120",
		"# TYPE rpivideo_peak_queue_ms gauge",
		"rpivideo_peak_queue_ms 41.5",
		"# TYPE rpivideo_owl_ms histogram",
		`rpivideo_owl_ms_bucket{le="1"} 0`,
		`rpivideo_owl_ms_bucket{le="+Inf"} 5`,
		"rpivideo_owl_ms_count 5",
		"# TYPE rpivideo_frame_delay_ms histogram",
		`rpivideo_frame_delay_ms_bucket{le="+Inf"} 5`,
		"rpivideo_frame_delay_ms_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The log histogram's zero cell seeds the cumulative counts: the first
	// emitted bucket already includes the v=0 observation.
	lines := strings.Split(text, "\n")
	for _, line := range lines {
		if strings.HasPrefix(line, "rpivideo_frame_delay_ms_bucket") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("first frame_delay bucket excludes the zero cell: %q", line)
			}
			break
		}
	}
}

// TestWritePrometheusOrdering: counters precede gauges precede histograms,
// and names sort within each kind.
func TestWritePrometheusOrdering(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	want := []string{
		"rpivideo_packets_delivered_total",
		"rpivideo_packets_sent_total",
		"rpivideo_peak_queue_ms",
		"rpivideo_owl_ms",
		"rpivideo_frame_delay_ms",
	}
	if len(families) != len(want) {
		t.Fatalf("family order %v, want %v", families, want)
	}
	for i := range want {
		if families[i] != want[i] {
			t.Fatalf("family order %v, want %v", families, want)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"clean_name_42": "clean_name_42",
		"dots.and-dash": "dots_and_dash",
		"sp ace":        "sp_ace",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
