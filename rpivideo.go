// Package rpivideo reproduces the measurement system of "Analyzing
// Real-time Video Delivery over Cellular Networks for Remote Piloting
// Aerial Vehicles" (Baltaci et al., IMC '22) as a Go library.
//
// The library contains every system the study depends on, built from
// scratch: a deterministic discrete-event simulator, the RTP/RTCP wire
// formats (including transport-wide congestion control feedback and RFC
// 8888), send-side Google Congestion Control, SCReAM, an H.264-style
// encoder model, the GStreamer-like jitter-buffer player, an LTE access
// link emulator with handovers calibrated to the paper's statistics, and
// the published flight trajectory. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-vs-measured record.
//
// The quickest start:
//
//	result := rpivideo.Run(rpivideo.Config{
//		Env:  rpivideo.Urban,
//		Air:  true,
//		CC:   rpivideo.GCC,
//		Seed: 1,
//	})
//	fmt.Printf("goodput: %.1f Mbps\n", result.GoodputMean())
//
// Every run is a pure function of its Config (including Seed): re-running
// with the same configuration reproduces the result bit-for-bit.
package rpivideo

import (
	"io"

	"rpivideo/internal/bond"
	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/fault"
	"rpivideo/internal/obs"
	"rpivideo/internal/repair"
)

// Environment selects the measurement area of the campaign (§3.1).
type Environment = cell.Environment

// Environments.
const (
	// Urban is the Munich city-centre zone: dense base stations, abundant
	// uplink capacity (static 25 Mbps is sustainable).
	Urban = cell.Urban
	// Rural is the Munich-outskirts zone: sparse coverage, fluctuating
	// capacity around 8–12 Mbps.
	Rural = cell.Rural
)

// Operator selects the mobile network operator profile (Appendix A.3).
type Operator = cell.Operator

// Operators.
const (
	// P1 is the study's default operator.
	P1 = cell.P1
	// P2 is the competing operator with denser rural coverage.
	P2 = cell.P2
)

// CC selects the rate-control regime (§3.2).
type CC = core.CCKind

// Rate-control regimes.
const (
	// Static streams at a constant bitrate (25 Mbps urban / 8 Mbps rural).
	Static = core.CCStatic
	// GCC is Google Congestion Control over transport-wide feedback.
	GCC = core.CCGCC
	// SCReAM is Self-Clocked Rate Adaptation for Multimedia over RFC 8888
	// feedback.
	SCReAM = core.CCSCReAM
)

// Workload selects the traffic a run carries.
type Workload = core.Workload

// Workloads.
const (
	// Video is the RTP video stream of the main campaign.
	Video = core.WorkloadVideo
	// Ping is the no-cross-traffic probe workload of Fig. 13.
	Ping = core.WorkloadPing
)

// Config describes one measurement run; see core.Config for field docs.
type Config = core.Config

// Result aggregates one run's measurements; see core.Result.
type Result = core.Result

// Handover is one handover event with its execution time.
type Handover = cell.Event

// CampaignOptions tunes campaign execution: worker count, seed derivation
// and the progress hook. See core.CampaignOptions for field docs.
type CampaignOptions = core.CampaignOptions

// CampaignProgress is one per-completed-run campaign status sample.
type CampaignProgress = core.CampaignProgress

// FaultConfig arms deterministic fault injection on a run via
// Config.Faults: scripted coverage outages, the T310/T311 radio-link-
// failure model and the graceful-degradation responses. The zero value
// disables everything. See internal/fault for field docs and DESIGN.md §5
// for the model.
type FaultConfig = fault.Config

// FaultWindow is one scripted outage window (start, duration, direction).
type FaultWindow = fault.Window

// FaultEpisode is one realized outage in Result.FaultEpisodes.
type FaultEpisode = fault.Episode

// ParseFaultSchedule parses a comma-separated fault schedule like
// "45s+2s,90s+500ms/down" into scripted fault windows: `start+duration`
// is a coverage outage, `start~duration` a loss fade (service up, packets
// erased in flight).
func ParseFaultSchedule(spec string) ([]FaultWindow, error) { return fault.ParseSchedule(spec) }

// BondConfig arms dual-operator link bonding on a run via Config.Bond: a
// second radio chain over the competing operator, a per-path health
// monitor and a scheduling policy. The zero value disables bonding (the
// legacy Config.Multipath flag remains as an alias for the duplicate
// policy). See internal/bond for field docs and DESIGN.md §9 for the
// model.
type BondConfig = bond.Config

// BondPolicy selects the bonding scheduler.
type BondPolicy = bond.Policy

// Bonding scheduler policies.
const (
	// BondDuplicate copies every packet onto every live path.
	BondDuplicate = bond.PolicyDuplicate
	// BondFailover keeps a hot standby and switches on health breach.
	BondFailover = bond.PolicyFailover
	// BondCheapest follows the best path by RTT+loss score.
	BondCheapest = bond.PolicyCheapest
	// BondSpray stripes packets across live paths by weighted round-robin.
	BondSpray = bond.PolicySpray
)

// BondPathStats is one bonded path's accounting in Result.BondPaths.
type BondPathStats = core.BondPathStats

// RepairConfig arms the NACK/RTX packet-loss repair layer on a run via
// Config.Repair: receiver-side loss detection with RTT-adaptive retries,
// a bounded sender retransmission cache, and a repair budget accounted
// against the congestion controller's target rate. The zero value
// disables the layer; RepairConfig{Enabled: true} uses the calibrated
// defaults. See internal/repair for field docs and DESIGN.md §7 for the
// model.
type RepairConfig = repair.Config

// DefaultRepairConfig returns the calibrated repair parameters, enabled.
func DefaultRepairConfig() RepairConfig { return repair.DefaultConfig() }

// Tracer is the deterministic event recorder a run carries when
// Config.Trace is set; Result.Trace holds it. See internal/obs for the
// event schema and DESIGN.md §6 for the payload conventions.
type Tracer = obs.Tracer

// TraceEvent is one recorded simulation event (send, recv, drop, handover,
// RLF, outage, CC decision, frame playback).
type TraceEvent = obs.Event

// MetricsRegistry is a campaign metrics snapshot: counters, gauges and
// fixed-bucket histograms with byte-stable JSON export.
type MetricsRegistry = obs.Registry

// WriteCampaignTrace renders every traced run of a campaign as JSONL in
// run-index order; the bytes are identical at any campaign worker count.
func WriteCampaignTrace(w io.Writer, results []*Result) error {
	return core.WriteCampaignTrace(w, results)
}

// WriteCampaignMetrics merges the per-run metric registries in run-index
// order and writes the campaign registry as indented JSON.
func WriteCampaignMetrics(w io.Writer, results []*Result) error {
	return core.WriteCampaignMetrics(w, results)
}

// Run executes one measurement run.
func Run(cfg Config) *Result { return core.Run(cfg) }

// RunCampaign executes runs repetitions of cfg under seeds derived by
// DeriveSeed, fanned out across one worker per logical CPU. Results come
// back in run-index order, so the output is identical at any parallelism.
func RunCampaign(cfg Config, runs int) []*Result { return core.RunCampaign(cfg, runs) }

// RunCampaignWithOptions is RunCampaign with explicit worker count, seed
// derivation and progress reporting; per-run panics come back as per-run
// errors instead of failing the whole campaign.
func RunCampaignWithOptions(cfg Config, runs int, opts CampaignOptions) ([]*Result, []error) {
	return core.RunCampaignWithOptions(cfg, runs, opts)
}

// DeriveSeed exposes the campaign seed derivation so externally-driven
// sweeps can reproduce individual campaign runs.
func DeriveSeed(base int64, run int) int64 { return core.DeriveSeed(base, run) }

// Merge folds several results into combined distributions by concatenating
// samples. For large campaigns prefer Summarize or RunCampaignSummary, whose
// sketch-based aggregation keeps memory independent of the run count.
func Merge(results []*Result) *Result { return core.Merge(results) }

// Summary is a campaign-level aggregate built on mergeable quantile
// sketches: counters sum exactly, distribution queries answer within
// metrics.SketchAlpha relative error, and memory is O(buckets) regardless
// of how many runs were folded.
type Summary = core.Summary

// Summarize folds per-run results into a sketch-based campaign summary.
func Summarize(results []*Result) *Summary { return core.Summarize(results) }

// RunCampaignSummary executes a campaign and folds each run into a Summary
// in run-index order, discarding per-run results as it goes: the memory
// high-water mark no longer grows with the campaign size. The summary is
// byte-identical at any worker count.
func RunCampaignSummary(cfg Config, runs int, opts CampaignOptions) (*Summary, []error) {
	return core.RunCampaignSummary(cfg, runs, opts)
}

// FleetConfig runs N UAVs in one process against one shared base-station
// map with per-cell PRB schedulers, so every UAV attached to a cell
// splits its capacity. Results are byte-identical at any worker count.
// See internal/core/fleet.go for field docs and DESIGN.md §10 for the
// model.
type FleetConfig = core.FleetConfig

// FleetResult is the aggregate of one fleet execution: the folded
// summary, per-UAV goodput distribution, per-cell contention stats and
// the attach/detach/overload event timeline.
type FleetResult = core.FleetResult

// SchedulerKind selects the per-cell PRB scheduler for fleet runs.
type SchedulerKind = cell.SchedulerKind

// Per-cell PRB schedulers.
const (
	// SchedRR splits a cell's capacity equally among attached UAVs.
	SchedRR = cell.SchedRR
	// SchedPF weights shares by per-UAV spectral efficiency.
	SchedPF = cell.SchedPF
)

// RunFleet executes a fleet of UAVs against one shared cell deployment.
// The per-UAV errs slice is indexed by UAV; a nil result with a single
// error reports a configuration rejection (e.g. a bonded base config).
func RunFleet(fc FleetConfig) (*FleetResult, []error) { return core.RunFleet(fc) }

// ParseFleetSpec parses a CLI fleet spec: "N" or "N/rr|pf".
func ParseFleetSpec(spec string) (int, SchedulerKind, error) { return core.ParseFleetSpec(spec) }
