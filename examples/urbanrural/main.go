// The paper's headline comparison: the three rate-control regimes in the
// urban and the rural environment (Figs. 6 and 7), three flights each.
package main

import (
	"fmt"
	"os"

	"rpivideo"
)

func main() {
	fmt.Println("method × environment, 3 flights each (campaigns fan out across CPUs):")
	fmt.Printf("%-16s %8s %10s %10s %9s %8s\n",
		"configuration", "goodput", "<300ms", "ssim<0.5", "stalls/m", "HO/s")
	// The progress hook makes long sweeps observable: one line per
	// completed flight with the aggregate simulation speed.
	opts := rpivideo.CampaignOptions{Progress: func(p rpivideo.CampaignProgress) {
		fmt.Fprintf(os.Stderr, "  run %d/%d done (%.0f sim-s/s)\n", p.Completed, p.Total, p.SimRate)
	}}
	for _, env := range []rpivideo.Environment{rpivideo.Urban, rpivideo.Rural} {
		for _, ccKind := range []rpivideo.CC{rpivideo.Static, rpivideo.SCReAM, rpivideo.GCC} {
			rs, errs := rpivideo.RunCampaignWithOptions(rpivideo.Config{
				Env:  env,
				Air:  true,
				CC:   ccKind,
				Seed: 1,
			}, 3, opts)
			for _, err := range errs {
				if err != nil {
					fmt.Fprintln(os.Stderr, "run failed:", err)
					os.Exit(1)
				}
			}
			m := rpivideo.Merge(rs)
			fmt.Printf("%-16s %6.1fMb %9.0f%% %9.2f%% %9.2f %8.3f\n",
				fmt.Sprintf("%v/%v", env, ccKind),
				m.GoodputMean(),
				100*m.PlaybackMs.FracBelow(300),
				100*m.SSIM.FracBelow(0.5),
				m.StallsPerMin,
				m.HandoverRate())
		}
	}
	fmt.Println("\npaper (Fig. 6/7): urban goodput 25 > 21 > 19 Mbps;")
	fmt.Println("SCReAM wins rural goodput but collapses on urban playback latency.")
}
