// Live UDP demo: an in-process sender/receiver pair streaming the synthetic
// video over a real loopback socket, using the same RTP wire formats,
// packetizer, encoder model and GCC controller as the simulated campaigns.
// This is the single-binary version of cmd/rpsend + cmd/rprecv.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/gcc"
	"rpivideo/internal/rtp"
	"rpivideo/internal/video"
)

const streamFor = 10 * time.Second

func main() {
	raddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	recvConn, err := net.ListenUDP("udp", raddr)
	if err != nil {
		log.Fatal(err)
	}
	defer recvConn.Close()

	sendConn, err := net.Dial("udp", recvConn.LocalAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer sendConn.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); receiver(recvConn) }()
	go func() { defer wg.Done(); sender(sendConn) }()
	wg.Wait()
}

// receiver reassembles frames and returns TWCC feedback.
func receiver(conn *net.UDPConn) {
	rec := rtp.NewTWCCRecorder(1, 0x1234)
	depkt := rtp.NewDepacketizer()
	var mu sync.Mutex
	var peer *net.UDPAddr
	frames, packets := 0, 0
	start := time.Now()

	stop := time.After(streamFor + time.Second)
	go func() {
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				conn.Close()
				return
			case <-ticker.C:
				mu.Lock()
				fb := rec.Flush()
				target := peer
				mu.Unlock()
				if fb == nil || target == nil {
					continue
				}
				if buf, err := fb.Marshal(); err == nil {
					_, _ = conn.WriteToUDP(buf, target)
				}
			}
		}
	}()

	buf := make([]byte, 64<<10)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			fmt.Printf("receiver: %d packets, %d complete frames in %v\n",
				packets, frames, time.Since(start).Round(time.Second))
			return
		}
		var p rtp.Packet
		if err := p.Unmarshal(buf[:n]); err != nil {
			continue
		}
		mu.Lock()
		peer = from
		packets++
		if tseq, ok := p.Header.TransportSeq(); ok {
			rec.Record(tseq, time.Since(start))
		}
		if fs, err := depkt.Push(&p, time.Since(start)); err == nil && fs.Complete() {
			frames++
			depkt.Delete(fs.Num)
		}
		mu.Unlock()
	}
}

// sender encodes, packetizes and paces under GCC.
func sender(conn net.Conn) {
	ctrl := gcc.New(gcc.Config{})
	enc := video.NewEncoder(video.DefaultEncoderConfig(), ctrl.TargetBitrate(0), rand.New(rand.NewSource(1)))
	pk := rtp.NewPacketizer(0x1234, 96, 1200)
	var (
		mu    sync.Mutex
		queue cc.SendQueue
		pacer cc.Pacer
		sent  = map[uint16]cc.SentPacket{}
	)
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }

	// Feedback reader.
	go func() {
		buf := make([]byte, 2048)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			var fb rtp.TWCC
			if err := fb.Unmarshal(buf[:n]); err != nil {
				continue
			}
			mu.Lock()
			acks := make([]cc.Ack, 0, len(fb.Packets))
			for i, p := range fb.Packets {
				tseq := fb.BaseSeq + uint16(i)
				a := cc.Ack{TransportSeq: tseq, Received: p.Received, ArrivalTime: p.At}
				if rec, ok := sent[tseq]; ok {
					a.Size, a.SendTime = rec.Size, rec.SendTime
					delete(sent, tseq)
				}
				acks = append(acks, a)
			}
			ctrl.OnFeedback(now(), acks)
			mu.Unlock()
		}
	}()

	frameTick := time.NewTicker(time.Second / 30)
	defer frameTick.Stop()
	paceTick := time.NewTicker(time.Millisecond)
	defer paceTick.Stop()
	statTick := time.NewTicker(time.Second)
	defer statTick.Stop()
	deadline := time.After(streamFor)
	for {
		select {
		case <-deadline:
			fmt.Println("sender: done")
			return
		case <-frameTick.C:
			mu.Lock()
			enc.SetTarget(ctrl.TargetBitrate(now()))
			f := enc.NextFrame(now())
			for _, p := range pk.Packetize(rtp.FrameInfo{
				Num: f.Num, EncodeTime: f.EncodeTime, Keyframe: f.Keyframe,
				Size: f.Size, RTPTime: uint32(uint64(f.Num) * rtp.VideoClockRate / 30),
			}) {
				queue.Push(cc.Item{Data: p, Size: p.MarshalSize(), Enqueued: now()})
			}
			mu.Unlock()
		case <-paceTick.C:
			mu.Lock()
			t := now()
			for {
				it, ok := queue.Peek()
				if !ok || !pacer.Idle(t) {
					break
				}
				queue.Pop()
				pacer.Next(t, it.Size, ctrl.PacingRate(t))
				p := it.Data.(*rtp.Packet)
				wire, err := p.Marshal()
				if err != nil {
					continue
				}
				tseq, _ := p.Header.TransportSeq()
				sent[tseq] = cc.SentPacket{TransportSeq: tseq, Size: it.Size, SendTime: t}
				if _, err := conn.Write(wire); err != nil {
					mu.Unlock()
					return
				}
			}
			mu.Unlock()
		case <-statTick.C:
			mu.Lock()
			fmt.Printf("sender: t=%2.0fs target %.1f Mbps\n", now().Seconds(), ctrl.TargetBitrate(now())/1e6)
			mu.Unlock()
		}
	}
}
