// Quickstart: run one urban remote-piloting flight with Google Congestion
// Control and print the metrics the paper evaluates.
package main

import (
	"fmt"

	"rpivideo"
)

func main() {
	r := rpivideo.Run(rpivideo.Config{
		Env:  rpivideo.Urban,
		Air:  true,
		CC:   rpivideo.GCC,
		Seed: 1,
	})

	fmt.Println("One urban flight with GCC:")
	fmt.Printf("  flight duration      %v\n", r.Duration)
	fmt.Printf("  goodput              %.1f Mbps (mean)\n", r.GoodputMean())
	fmt.Printf("  one-way delay        p50 %.0f ms, p99 %.0f ms\n", r.OWDms.Median(), r.OWDms.Quantile(0.99))
	fmt.Printf("  playback < 300 ms    %.0f%% of frames\n", 100*r.PlaybackMs.FracBelow(300))
	fmt.Printf("  SSIM < 0.5           %.2f%% of frames\n", 100*r.SSIM.FracBelow(0.5))
	fmt.Printf("  stalls               %.2f per minute\n", r.StallsPerMin)
	fmt.Printf("  handovers            %d (%.2f per second)\n", len(r.Handovers), r.HandoverRate())
	fmt.Printf("  packet error rate    %.4f%%\n", 100*r.PER)
	if r.RampUpTo25 > 0 {
		fmt.Printf("  ramped to 25 Mbps at %v\n", r.RampUpTo25)
	}
}
