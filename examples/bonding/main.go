// A remote pilot cannot reboot the network: when the serving operator's
// cell drops the link mid-flight, the only fix already in the air is a
// second operator. This example blacks out the primary operator's path for
// two seconds mid-run (an operator-side failure, not a coverage hole — the
// competing operator keeps serving) and compares a single-operator stream
// against the four bonding scheduler policies riding through it.
package main

import (
	"fmt"
	"time"

	"rpivideo"
)

func main() {
	windows, err := rpivideo.ParseFaultSchedule("45s+2s@p1")
	if err != nil {
		panic(err)
	}
	base := rpivideo.Config{
		Env: rpivideo.Urban, CC: rpivideo.GCC, Seed: 7, Duration: 90 * time.Second,
		Faults: rpivideo.FaultConfig{
			Windows:          windows,
			RLF:              true,
			Watchdog:         true,
			KeyframeRecovery: true,
		},
	}

	show := func(name string, cfg rpivideo.Config) {
		r := rpivideo.Run(cfg)
		var stall time.Duration
		for _, s := range r.Stalls {
			stall += s.Duration
		}
		line := fmt.Sprintf("%-22s stall %5d ms   skipped %3d", name, stall.Milliseconds(), r.FramesSkipped)
		if len(r.BondPaths) > 0 {
			var sent, unique int64
			for _, p := range r.BondPaths {
				sent += p.Sent
				unique += p.Delivered - p.Suppressed
			}
			line += fmt.Sprintf("   overhead %.2fx   switches %d   primary down %4.1f s",
				float64(sent)/float64(unique), r.BondSwitches, r.BondPaths[0].DownMs/1000)
		}
		fmt.Println(line)
	}

	fmt.Println("urban ground GCC, 2 s primary-operator blackout at t=45 s (RLF armed):")
	show("  single operator", base)
	for _, p := range []rpivideo.BondPolicy{
		rpivideo.BondDuplicate, rpivideo.BondFailover, rpivideo.BondCheapest, rpivideo.BondSpray,
	} {
		cfg := base
		cfg.Bond = rpivideo.BondConfig{Policy: p}
		show("  + "+p.String(), cfg)
	}
	fmt.Println("\n(failover parks a hot standby and pays only probe overhead; duplicate")
	fmt.Println(" buys the same protection with ~2x the radio sends)")
}
