// Operator comparison (Fig. 10 and Appendix A.3): the competing operator P2
// deploys rural sites more densely than P1, which lifts capacity and video
// quality — but also the handover frequency, and SCReAM's playback latency
// does not improve with the extra capacity.
package main

import (
	"fmt"
	"runtime"

	"rpivideo"
)

func main() {
	fmt.Printf("rural environment, 3 flights per cell (%d workers):\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-18s %8s %9s %10s %8s\n", "operator/method", "goodput", "<300ms", "ssim<0.5", "HO/s")
	for _, op := range []rpivideo.Operator{rpivideo.P1, rpivideo.P2} {
		for _, ccKind := range []rpivideo.CC{rpivideo.Static, rpivideo.SCReAM, rpivideo.GCC} {
			// RunCampaign fans the three flights out across CPUs and
			// merges them in run-index order, so this table is identical
			// to the serial one.
			m := rpivideo.Merge(rpivideo.RunCampaign(rpivideo.Config{
				Env:  rpivideo.Rural,
				Op:   op,
				Air:  true,
				CC:   ccKind,
				Seed: 2,
			}, 3))
			fmt.Printf("%-18s %6.1fMb %8.0f%% %9.2f%% %8.3f\n",
				fmt.Sprintf("%v/%v", op, ccKind),
				m.GoodputMean(),
				100*m.PlaybackMs.FracBelow(300),
				100*m.SSIM.FracBelow(0.5),
				m.HandoverRate())
		}
	}
	fmt.Println("\npaper (Fig. 10/12): P2's denser rural deployment provides more")
	fmt.Println("capacity and more handovers; larger capacity does not fix SCReAM.")
}
