// The paper's §5 asks what would fix the problems it measured. This example
// runs the three implemented answers side by side:
//
//   - DAPS make-before-break handovers (removes the latency spikes),
//   - CoDel AQM on the bottleneck (bounds bufferbloat delay),
//   - multipath duplication over both operators (removes correlated-path
//     outages).
package main

import (
	"fmt"

	"rpivideo"
)

func main() {
	show := func(name string, cfg rpivideo.Config) {
		r := rpivideo.Run(cfg)
		fmt.Printf("%-28s <300ms %3.0f%%   owd p99 %5.0f ms   stalls %.2f/min   skipped %d\n",
			name, 100*r.PlaybackMs.FracBelow(300), r.OWDms.Quantile(0.99),
			r.StallsPerMin, r.FramesSkipped)
	}

	fmt.Println("urban static 25 Mbps flight:")
	base := rpivideo.Config{Env: rpivideo.Urban, Air: true, CC: rpivideo.Static, Seed: 7}
	show("  baseline", base)
	daps := base
	daps.DAPS = true
	show("  + DAPS handover", daps)

	fmt.Println("\nrural static 8 Mbps flight:")
	rural := rpivideo.Config{Env: rpivideo.Rural, Air: true, CC: rpivideo.Static, Seed: 7}
	show("  baseline (P1 only)", rural)
	mp := rural
	mp.Multipath = true
	show("  + duplication over P1+P2", mp)

	fmt.Println("\nrural ground, static pushed to 10.5 Mbps (bufferbloat regime):")
	hot := rpivideo.Config{Env: rpivideo.Rural, Air: false, CC: rpivideo.Static, StaticRate: 10.5e6, Seed: 7}
	show("  deep FIFO", hot)
	aqm := hot
	aqm.AQM = true
	show("  + CoDel AQM", aqm)
	fmt.Println("  (CoDel halves the network delay tail and removes overflow frame loss;")
	fmt.Println("   it cannot remove radio-stall spikes, which are not standing queues)")
}
