// Handover anatomy (Fig. 8/9): one rural GCC flight's latency timeline with
// handover markers, and the max/min latency ratios in the windows around
// each handover.
package main

import (
	"fmt"
	"time"

	"rpivideo"
	"rpivideo/internal/metrics"
)

func main() {
	r := rpivideo.Run(rpivideo.Config{
		Env:        rpivideo.Rural,
		Air:        true,
		CC:         rpivideo.GCC,
		Seed:       4,
		KeepSeries: true,
	})

	fmt.Printf("rural GCC flight: %d handovers over %v\n\n", len(r.Handovers), r.Duration)

	// ASCII timeline: one row per 5 s, bar length ∝ p95 OWD.
	const bin = 5 * time.Second
	for lo := time.Duration(0); lo < r.Duration; lo += bin {
		pts := r.OWDSeries.Window(lo, lo+bin)
		if len(pts) == 0 {
			continue
		}
		var d metrics.Dist
		for _, p := range pts {
			d.Add(p.V)
		}
		p95 := d.Quantile(0.95)
		bar := int(p95 / 20)
		if bar > 40 {
			bar = 40
		}
		marker := ""
		for _, ev := range r.Handovers {
			if ev.At >= lo && ev.At < lo+bin {
				marker += fmt.Sprintf("  HO(%d→%d, %v)", ev.From, ev.To, ev.HET.Round(time.Millisecond))
			}
		}
		fmt.Printf("t=%3ds |%-40s| p95=%4.0fms%s\n", int(lo/time.Second), bars(bar), p95, marker)
	}

	// The Fig. 9 statistic.
	var before, after metrics.Dist
	for _, ev := range r.Handovers {
		if b, ok := r.OWDSeries.WindowMaxMinRatio(ev.At-time.Second, ev.At); ok {
			before.Add(b)
		}
		end := ev.At + ev.HET
		if a, ok := r.OWDSeries.WindowMaxMinRatio(end, end+time.Second); ok {
			after.Add(a)
		}
	}
	fmt.Printf("\nmax/min latency ratio before handovers: mean %.1f× max %.0f× (paper: ≈8×, up to 37×)\n",
		before.Mean(), before.Max())
	fmt.Printf("max/min latency ratio after handovers:  mean %.1f× (paper: ≈5×)\n", after.Mean())
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
