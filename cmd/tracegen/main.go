// Command tracegen emits a synthetic flight trace in the repository's
// flight-trace/v1 JSON-lines format (trace.Schema) — the open-data workflow
// of the paper (§3.2). The first line is a "meta" record (label, seed,
// duration_us); every following line is one event record with a fixed kind:
// "packet" (t_us, owd_us), "drop" (t_us), "handover" (t_us, from, to,
// het_us), "target" and "goodput" (t_us, mbps), "stall" (t_us, gap_us).
// Zero-valued fields are omitted. This is the dataset-release format, not
// the richer internal event trace of `rpbench -trace`; both are tabulated
// in DESIGN.md §6.
//
// Usage:
//
//	tracegen -env urban -cc gcc -seed 3 > flight.jsonl
//	tracegen -env rural -cc scream -op P2 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"rpivideo/internal/cell"
	"rpivideo/internal/core"
	"rpivideo/internal/trace"
)

func main() {
	env := flag.String("env", "urban", "environment: urban or rural")
	op := flag.String("op", "P1", "operator: P1 or P2")
	ccName := flag.String("cc", "gcc", "rate control: static, gcc or scream")
	seed := flag.Int64("seed", 1, "seed")
	ground := flag.Bool("ground", false, "ground (motorbike) run instead of a flight")
	summary := flag.Bool("summary", false, "print a summary instead of the trace")
	asCSV := flag.Bool("csv", false, "emit CSV instead of JSON lines")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage: tracegen [flags] > flight.jsonl\n\n")
		fmt.Fprintf(out, "Emits a synthetic flight trace in the %s JSON-lines schema\n", trace.Schema)
		fmt.Fprintf(out, "(see DESIGN.md §6): a meta record, then one record per event —\n")
		fmt.Fprintf(out, "packet, drop, handover, target, goodput, stall.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := core.Config{Air: !*ground, Seed: *seed, KeepSeries: true}
	switch *env {
	case "urban":
		cfg.Env = cell.Urban
	case "rural":
		cfg.Env = cell.Rural
	default:
		fatalf("unknown environment %q", *env)
	}
	switch *op {
	case "P1":
		cfg.Op = cell.P1
	case "P2":
		cfg.Op = cell.P2
	default:
		fatalf("unknown operator %q", *op)
	}
	switch *ccName {
	case "static":
		cfg.CC = core.CCStatic
	case "gcc":
		cfg.CC = core.CCGCC
	case "scream":
		cfg.CC = core.CCSCReAM
	default:
		fatalf("unknown rate control %q", *ccName)
	}

	recs := trace.FromResult(core.Run(cfg))
	if *summary {
		s := trace.Summarize(recs)
		fmt.Printf("%s: %v, %d packets (mean OWD %v), %d drops, %d handovers (max HET %v), %d stalls, %.1f Mbps\n",
			s.Label, s.Duration, s.Packets, s.MeanOWD, s.Drops, s.Handovers, s.MaxHET, s.Stalls, s.MeanGoodputMbps)
		return
	}
	if *asCSV {
		if err := trace.WriteCSV(os.Stdout, recs); err != nil {
			fatalf("write csv: %v", err)
		}
		return
	}
	w := trace.NewWriter(os.Stdout)
	if err := w.WriteAll(recs); err != nil {
		fatalf("write: %v", err)
	}
	if err := w.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
