// Command rpbench regenerates the tables and figures of the paper's
// evaluation from the simulation pipeline and prints the series the paper
// plots, together with shape checks against the published claims.
//
// Usage:
//
//	rpbench                  # run every experiment (≈10 min at -runs 3)
//	rpbench -fig fig6        # one experiment
//	rpbench -runs 5 -seed 7  # more repetitions, different base seed
//	rpbench -workers 1       # serial campaigns (default: one per CPU)
//	rpbench -list            # list experiment and scenario IDs
//
// Observability:
//
//	rpbench -scenario urban-gcc -trace out.jsonl   # traced scenario run
//	rpbench -scenario urban-gcc -metrics out.json  # campaign metrics
//	rpbench -pprof 127.0.0.1:6060 ...              # pprof + runtime metrics
//
// Trace and metrics exports are byte-identical at any -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"rpivideo/internal/core"
	"rpivideo/internal/experiments"
	"rpivideo/internal/obs"
)

var registry = []struct {
	id   string
	desc string
	run  func(experiments.Options) *experiments.Report
}{
	{"fig4a", "handover frequency air vs ground", experiments.Fig4aHandoverFrequency},
	{"fig4b", "handover execution time", experiments.Fig4bHandoverExecutionTime},
	{"fig5", "one-way latency CDFs", experiments.Fig5OneWayLatency},
	{"fig6", "goodput per delivery method", experiments.Fig6Goodput},
	{"fig7a", "FPS CDFs", experiments.Fig7aFPS},
	{"fig7b", "SSIM CDFs", experiments.Fig7bSSIM},
	{"fig7c", "playback latency CDFs", experiments.Fig7cPlaybackLatency},
	{"fig8", "handover timeline (single flight)", experiments.Fig8HandoverTimeline},
	{"fig9", "latency ratio around handovers", experiments.Fig9LatencyRatio},
	{"fig10", "operator capacity comparison", experiments.Fig10OperatorCapacity},
	{"tbl-stall", "stall rates", experiments.TableStallRates},
	{"tbl-rampup", "CC ramp-up times", experiments.TableRampUp},
	{"fig12", "operator video comparison", experiments.Fig12OperatorVideo},
	{"fig13", "RTT by altitude", experiments.Fig13RTTByAltitude},
	{"abl-ack", "SCReAM ack-window ablation", experiments.AblationScreamAckWindow},
	{"abl-jb", "jitter buffer ablation", experiments.AblationJitterBuffer},
	{"abl-est", "GCC estimator ablation (Kalman vs trendline)", experiments.AblationEstimator},
	{"ext-daps", "DAPS make-before-break handover (§5)", experiments.ExtDAPS},
	{"ext-aqm", "CoDel AQM on the bottleneck (§5)", experiments.ExtAQM},
	{"ext-mpath", "multipath duplication (§5)", experiments.ExtMultipath},
	{"robust", "fault injection: outages and graceful degradation", experiments.Robustness},
	{"repair", "packet-loss repair: NACK/RTX vs PLI-only", experiments.Repair},
}

func main() {
	fig := flag.String("fig", "all", "experiment ID to run, or 'all'")
	runs := flag.Int("runs", 3, "seeded repetitions per configuration")
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent campaign runs (results are identical at any setting)")
	faults := flag.String("faults", "",
		"scripted fault schedule for the robust/repair experiments: \"start+dur\" outages, \"start~dur\" loss fades, e.g. \"45s+2s,70s~80ms/up\"")
	list := flag.Bool("list", false, "list experiment and scenario IDs and exit")
	scenario := flag.String("scenario", "", "run a named observability scenario instead of experiments")
	tracePath := flag.String("trace", "", "write the scenario's event trace as JSONL to this file (requires -scenario)")
	metricsPath := flag.String("metrics", "", "write the scenario's campaign metrics as JSON to this file (requires -scenario)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/runtime-metrics on this address while running")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		for _, sc := range experiments.Scenarios() {
			fmt.Printf("%-16s [scenario] %s\n", sc.Name, sc.Desc)
		}
		return
	}

	if *pprofAddr != "" {
		srv, addr, err := obs.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rpbench: pprof on http://%s/debug/pprof/\n", addr)
	}

	if *scenario != "" {
		if err := runScenario(*scenario, *seed, *workers, *tracePath, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *tracePath != "" || *metricsPath != "" {
		fmt.Fprintln(os.Stderr, "rpbench: -trace/-metrics require -scenario (use -list for scenario IDs)")
		os.Exit(2)
	}

	o := experiments.Options{Runs: *runs, Seed: *seed, Workers: *workers, FaultSpec: *faults}
	failed := 0
	ran := 0
	for _, e := range registry {
		if *fig != "all" && *fig != e.id {
			continue
		}
		ran++
		rep := e.run(o)
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		fmt.Println()
		if !rep.OK() {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rpbench: unknown experiment %q (use -list)\n", *fig)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rpbench: %d experiment(s) failed shape checks\n", failed)
		os.Exit(1)
	}
}

// runScenario executes one observability scenario and writes the requested
// exports. seed == the default base seed (1) keeps the scenario's pinned
// seed, so golden traces regenerate exactly.
func runScenario(name string, seed int64, workers int, tracePath, metricsPath string) error {
	sc, err := experiments.ScenarioByName(name)
	if err != nil {
		return err
	}
	if seed == 1 {
		seed = 0 // default flag value: keep the scenario's pinned seed
	}
	results, err := experiments.RunScenario(sc, seed, workers)
	if err != nil {
		return err
	}
	if tracePath != "" {
		if err := writeFileWith(tracePath, func(f *os.File) error {
			return core.WriteCampaignTrace(f, results)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote trace %s\n", tracePath)
	}
	if metricsPath != "" {
		if err := writeFileWith(metricsPath, func(f *os.File) error {
			return core.WriteCampaignMetrics(f, results)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote metrics %s\n", metricsPath)
	}
	merged := core.Merge(results)
	fmt.Printf("scenario %s: %d runs, %d packets sent, %d delivered, %d frames played, %d skipped\n",
		sc.Name, len(results), merged.PacketsSent, merged.PacketsDelivered, merged.FramesPlayed, merged.FramesSkipped)
	return nil
}

// writeFileWith creates path and runs write against it, closing on the way
// out and reporting the first error.
func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
