// Command rpbench regenerates the tables and figures of the paper's
// evaluation from the simulation pipeline and prints the series the paper
// plots, together with shape checks against the published claims.
//
// Usage:
//
//	rpbench                  # run every experiment (≈10 min at -runs 3)
//	rpbench -fig fig6        # one experiment
//	rpbench -runs 5 -seed 7  # more repetitions, different base seed
//	rpbench -workers 1       # serial campaigns (default: one per CPU)
//	rpbench -list            # list experiment and scenario IDs
//
// Observability:
//
//	rpbench -scenario urban-gcc -trace out.jsonl   # traced scenario run
//	rpbench -scenario urban-gcc -metrics out.json  # campaign metrics
//	rpbench -scenario urban-gcc -fleet 500/pf      # 500 UAVs on one shared cell map
//	rpbench -scenario urban-gcc -report out/       # analyzer report bundle
//	rpbench -analyze out.jsonl -report out/        # same bundle from a trace file
//
// Live ops server (any mode):
//
//	rpbench -scenario urban-gcc -serve 127.0.0.1:0   # Prometheus /metrics, /status JSON,
//	                                                 # /events SSE, pprof; bound addr printed
//	rpbench -scenario urban-gcc -serve 127.0.0.1:0 -servegrace 30s  # hold for a final scrape
//	rpbench -pprof 127.0.0.1:6060 ...                # legacy alias for -serve
//
// Trace, metrics and report exports are byte-identical at any -workers
// setting, and a report built from a live run matches one replayed from its
// JSONL trace byte for byte. The -serve layer is purely observational:
// every export is unchanged with or without it.
//
// Distributed campaigns:
//
//	rpbench -scenario urban-gcc -dist 4 -metrics out.json  # shard across 4 worker subprocesses
//	rpbench -scenario urban-gcc -dist 4 -runs 32 -distchunk 2 -trace out.jsonl
//
// -dist shards the campaign's run indices into leased chunks across N
// rpbench subprocesses (re-exec'd with the internal -worker flag); crashed,
// hung or straggling workers lose their leases and the chunks are re-issued,
// and every export stays byte-identical to the serial -scenario path.
//
// Regression gate and campaign benchmarks:
//
//	rpbench -scenario urban-gcc -compare baseline.json  # exit 1 on drift
//	rpbench -fig fig6 -benchout BENCH_campaign.json     # campaign perf stats
//	rpbench -scenario urban-gcc -benchout BENCH_run.json            # event-loop speed
//	rpbench -scenario urban-gcc -benchout BENCH_run.json \
//	        -benchcompare baseline/BENCH_run.json -benchtolerance 0.5  # perf gate
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rpivideo/internal/core"
	"rpivideo/internal/experiments"
	"rpivideo/internal/obs"
	"rpivideo/internal/obs/analyze"
)

var registry = []struct {
	id   string
	desc string
	run  func(experiments.Options) *experiments.Report
}{
	{"fig4a", "handover frequency air vs ground", experiments.Fig4aHandoverFrequency},
	{"fig4b", "handover execution time", experiments.Fig4bHandoverExecutionTime},
	{"fig5", "one-way latency CDFs", experiments.Fig5OneWayLatency},
	{"fig6", "goodput per delivery method", experiments.Fig6Goodput},
	{"fig7a", "FPS CDFs", experiments.Fig7aFPS},
	{"fig7b", "SSIM CDFs", experiments.Fig7bSSIM},
	{"fig7c", "playback latency CDFs", experiments.Fig7cPlaybackLatency},
	{"fig8", "handover timeline (single flight)", experiments.Fig8HandoverTimeline},
	{"fig9", "latency ratio around handovers", experiments.Fig9LatencyRatio},
	{"fig10", "operator capacity comparison", experiments.Fig10OperatorCapacity},
	{"tbl-stall", "stall rates", experiments.TableStallRates},
	{"tbl-rampup", "CC ramp-up times", experiments.TableRampUp},
	{"fig12", "operator video comparison", experiments.Fig12OperatorVideo},
	{"fig13", "RTT by altitude", experiments.Fig13RTTByAltitude},
	{"abl-ack", "SCReAM ack-window ablation", experiments.AblationScreamAckWindow},
	{"abl-jb", "jitter buffer ablation", experiments.AblationJitterBuffer},
	{"abl-est", "GCC estimator ablation (Kalman vs trendline)", experiments.AblationEstimator},
	{"ext-daps", "DAPS make-before-break handover (§5)", experiments.ExtDAPS},
	{"ext-aqm", "CoDel AQM on the bottleneck (§5)", experiments.ExtAQM},
	{"ext-mpath", "multipath duplication (§5)", experiments.ExtMultipath},
	{"robust", "fault injection: outages and graceful degradation", experiments.Robustness},
	{"repair", "packet-loss repair: NACK/RTX vs PLI-only", experiments.Repair},
	{"bond", "dual-operator bonding: policies through a primary-path blackout", experiments.Bond},
	{"fleet", "fleet-scale cell contention: shared cells under PRB scheduling", experiments.Fleet},
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(2)
	}
	if err := c.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(2)
	}

	if c.worker {
		if err := runWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench worker:", err)
			os.Exit(1)
		}
		return
	}

	if c.list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		for _, sc := range experiments.Scenarios() {
			fmt.Printf("%-16s [scenario] %s\n", sc.Name, sc.Desc)
		}
		return
	}

	// The live ops server (-serve, or its legacy alias -pprof): one address
	// carrying pprof, runtime metrics, the Prometheus exposition, the status
	// snapshot and the SSE stream. sink stays nil without a server so the
	// engines skip all status work.
	var sink obs.StatusSink
	var tel *obs.Telemetry
	if addr := c.opsAddr(); addr != "" {
		tel = obs.NewTelemetry()
		sink = tel
		srv, err := obs.Serve(addr, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rpbench: ops server on http://%s/ (/metrics /status /events /debug/pprof/)\n", srv.Addr())
		defer func() {
			if c.serveGrace > 0 {
				fmt.Fprintf(os.Stderr, "rpbench: holding the ops server for %v (-servegrace)\n", c.serveGrace)
				time.Sleep(c.serveGrace)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // the process is exiting either way
		}()
	}

	if c.analyze != "" {
		if err := replayTrace(c.analyze, c.report); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}

	if c.scenario != "" {
		sc, err := experiments.ScenarioByName(c.scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(2)
		}
		if c.fleetSpec != "" {
			size, sched, err := core.ParseFleetSpec(c.fleetSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpbench: -fleet:", err)
				os.Exit(2)
			}
			sc.Fleet, sc.Sched = size, sched
		}
		exports := scenarioExports{
			trace: c.trace, metrics: c.metrics, report: c.report,
			compare: c.compare, tolerance: c.tolerance,
		}
		so := experiments.ScenarioOptions{Seed: c.seed, Workers: c.workers, StatusSink: sink}
		if c.runsSet {
			so.Runs = c.runs
		}
		var drifted bool
		switch {
		case c.distWorkers > 0:
			if tel != nil {
				tel.SetLabels("dist", sc.Name)
			}
			drifted, err = runDistScenario(c, sc, sink, exports)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpbench:", err)
				os.Exit(1)
			}
		case sc.Fleet > 0:
			if tel != nil {
				tel.SetLabels("fleet", sc.Name)
			}
			drifted, err = runFleetScenario(sc, so, exports)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpbench:", err)
				os.Exit(1)
			}
			if c.bench != "" {
				if err := benchFleet(sc, c.seed, c.benchDur, c.benchSeconds, c.bench); err != nil {
					fmt.Fprintln(os.Stderr, "rpbench:", err)
					os.Exit(1)
				}
			}
		default:
			if tel != nil {
				tel.SetLabels("campaign", sc.Name)
			}
			drifted, err = runScenario(sc, so, exports)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rpbench:", err)
				os.Exit(1)
			}
			if c.bench != "" {
				slow, err := benchScenario(sc, c.seed, c.benchDur, c.benchSeconds, c.bench, c.benchCompare, c.benchTolerance)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rpbench:", err)
					os.Exit(1)
				}
				if slow {
					os.Exit(1)
				}
			}
		}
		if drifted {
			os.Exit(1)
		}
		return
	}

	if tel != nil {
		tel.SetLabels("experiments", c.fig)
	}
	o := experiments.Options{Runs: c.runs, Seed: c.seed, Workers: c.workers, FaultSpec: c.faults, BondPolicy: c.bondPolicy, StatusSink: sink}
	core.ResetStats()
	benchStart := time.Now()
	failed := 0
	ran := 0
	for _, e := range registry {
		if c.fig != "all" && c.fig != e.id {
			continue
		}
		ran++
		rep := e.run(o)
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		fmt.Println()
		if !rep.OK() {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rpbench: unknown experiment %q (use -list)\n", c.fig)
		os.Exit(2)
	}
	if c.bench != "" {
		if err := writeBench(c.bench, time.Since(benchStart)); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote benchmark stats %s\n", c.bench)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rpbench: %d experiment(s) failed shape checks\n", failed)
		os.Exit(1)
	}
}

// scenarioExports collects the optional -scenario output paths.
type scenarioExports struct {
	trace     string
	metrics   string
	report    string
	compare   string
	tolerance float64
}

// runScenario executes one observability scenario and writes the requested
// exports. Seed == the default base seed (1) keeps the scenario's pinned
// seed, so golden traces regenerate exactly. drifted reports a -compare
// gate failure (already printed); err covers everything else.
func runScenario(sc experiments.Scenario, so experiments.ScenarioOptions, exp scenarioExports) (drifted bool, err error) {
	if so.Seed == 1 {
		so.Seed = 0 // default flag value: keep the scenario's pinned seed
	}
	results, err := experiments.RunScenarioWithOptions(sc, so)
	if err != nil {
		return false, err
	}
	if exp.trace != "" {
		if err := writeFileWith(exp.trace, func(f *os.File) error {
			return core.WriteCampaignTrace(f, results)
		}); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote trace %s\n", exp.trace)
	}
	if exp.metrics != "" {
		if err := writeFileWith(exp.metrics, func(f *os.File) error {
			return core.WriteCampaignMetrics(f, results)
		}); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote metrics %s\n", exp.metrics)
	}
	if exp.report != "" {
		var analyses []*analyze.RunAnalysis
		for i, r := range results {
			analyses = append(analyses, analyze.Run(core.TraceRunMeta(r, i), r.Trace.Events()))
		}
		if err := analyze.WriteBundle(exp.report, analyses); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote report bundle %s\n", exp.report)
	}
	if exp.compare != "" {
		drifts, err := compareBaseline(exp.compare, results, exp.tolerance)
		if err != nil {
			return false, err
		}
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, "rpbench: drift:", d)
		}
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "rpbench: %d metric(s) drifted from %s\n", len(drifts), exp.compare)
			drifted = true
		} else {
			fmt.Fprintf(os.Stderr, "rpbench: metrics match baseline %s\n", exp.compare)
		}
	}
	merged := core.Merge(results)
	fmt.Printf("scenario %s: %d runs, %d packets sent, %d delivered, %d frames played, %d skipped\n",
		sc.Name, len(results), merged.PacketsSent, merged.PacketsDelivered, merged.FramesPlayed, merged.FramesSkipped)
	return drifted, nil
}

// runFleetScenario is the fleet counterpart of runScenario: -trace receives
// the per-cell event timeline (attach/detach/overload JSONL) and -metrics /
// -compare use the merged fleet registry. The analyzer bundle has no fleet
// analog, so -report is rejected.
func runFleetScenario(sc experiments.Scenario, so experiments.ScenarioOptions, exp scenarioExports) (drifted bool, err error) {
	if exp.report != "" {
		return false, fmt.Errorf("-report is not supported for fleet runs (the analyzer consumes per-run traces)")
	}
	if so.Seed == 1 {
		so.Seed = 0 // default flag value: keep the scenario's pinned seed
	}
	fr, err := experiments.RunFleetScenarioWithOptions(sc, so)
	if err != nil {
		return false, err
	}
	if exp.trace != "" {
		if err := writeFileWith(exp.trace, func(f *os.File) error { return fr.WriteCellEvents(f) }); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote cell events %s\n", exp.trace)
	}
	if exp.metrics != "" {
		if err := writeFileWith(exp.metrics, func(f *os.File) error { return fr.WriteMetrics(f) }); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote metrics %s\n", exp.metrics)
	}
	if exp.compare != "" {
		f, err := os.Open(exp.compare)
		if err != nil {
			return false, err
		}
		base, err := obs.ReadRegistryJSON(f)
		f.Close()
		if err != nil {
			return false, err
		}
		drifts := obs.CompareRegistries(base, fr.MetricsRegistry(), obs.Tolerance{Default: exp.tolerance})
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, "rpbench: drift:", d)
		}
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "rpbench: %d metric(s) drifted from %s\n", len(drifts), exp.compare)
			drifted = true
		} else {
			fmt.Fprintf(os.Stderr, "rpbench: metrics match baseline %s\n", exp.compare)
		}
	}
	fmt.Printf("fleet %s: %d UAVs (%s), median per-UAV goodput %.2f Mbps, min share %.4f, %d overload epochs, peak cell users %d, %d attaches, %d handovers\n",
		sc.Name, fr.Size, fr.Sched, fr.MedianUAVGoodput(), fr.MinShare, fr.OverloadEpochs, fr.PeakCellUsers, fr.Attaches, fr.Summary.Handovers)
	return drifted, nil
}

// replayTrace runs the analyzer over a JSONL trace file and writes the
// report bundle — the offline half of the live-vs-replay identity.
func replayTrace(tracePath, reportDir string) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	runs, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := analyze.WriteBundle(reportDir, analyze.Trace(runs)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rpbench: analyzed %d run(s) from %s into %s\n", len(runs), tracePath, reportDir)
	return nil
}

// compareBaseline reads a baseline registry export and diffs the campaign's
// freshly merged registry against it.
func compareBaseline(path string, results []*core.Result, tolerance float64) ([]obs.Drift, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	base, err := obs.ReadRegistryJSON(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	return obs.CompareRegistries(base, core.CampaignMetrics(results), obs.Tolerance{Default: tolerance}), nil
}

// benchStats is the BENCH_campaign.json payload: wall-clock and throughput
// for the experiments that ran, plus the campaign-aggregation memory
// high-water marks that the sketch-based summaries bound.
type benchStats struct {
	WallSeconds float64 `json:"wall_seconds"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	// HeapAllocBytes is the live heap at exit; TotalAllocBytes the
	// cumulative allocation volume.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	core.AggregationStats
}

func writeBench(path string, wall time.Duration) error {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	st := benchStats{
		WallSeconds:      wall.Seconds(),
		HeapAllocBytes:   m.HeapAlloc,
		TotalAllocBytes:  m.TotalAlloc,
		AggregationStats: core.Stats(),
	}
	if w := st.WallSeconds; w > 0 {
		st.RunsPerSec = float64(st.RunsExecuted) / w
	}
	return writeFileWith(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(&st)
	})
}

// writeFileWith creates path and runs write against it, closing on the way
// out and reporting the first error.
func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
