package main

import (
	"strings"
	"testing"
	"time"
)

// mustParse parses a legal command line or fails the test.
func mustParse(t *testing.T, args ...string) *cliConfig {
	t.Helper()
	c, err := parseFlags(args)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	return c
}

func TestParseFlagsDefaults(t *testing.T) {
	c := mustParse(t)
	if c.fig != "all" || c.runs != 3 || c.seed != 1 {
		t.Fatalf("unexpected defaults: fig=%q runs=%d seed=%d", c.fig, c.runs, c.seed)
	}
	if c.runsSet {
		t.Fatal("runsSet should be false when -runs is not given")
	}
	if c.distWorkers != 0 || c.distChunk != 0 || c.worker {
		t.Fatalf("dist flags should default off: dist=%d distchunk=%d worker=%v", c.distWorkers, c.distChunk, c.worker)
	}
	if err := c.validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
}

func TestParseFlagsTracksExplicitRuns(t *testing.T) {
	c := mustParse(t, "-runs", "3")
	if !c.runsSet {
		t.Fatal("runsSet should be true when -runs is given, even at the default value")
	}
}

func TestParseFlagsRejectsPositionalArgs(t *testing.T) {
	if _, err := parseFlags([]string{"-list", "stray"}); err == nil {
		t.Fatal("positional arguments should be rejected")
	}
}

// TestValidateRejectsIllegalCombos drives validate through every rejected
// flag combination, one case per rule.
func TestValidateRejectsIllegalCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"worker with scenario", []string{"-worker", "-scenario", "urban-gcc"}, "-worker"},
		{"worker with dist", []string{"-worker", "-dist", "2"}, "-worker"},
		{"worker with fig", []string{"-worker", "-fig", "fig6"}, "-worker"},
		{"worker with list", []string{"-worker", "-list"}, "-worker"},
		{"worker with benchout", []string{"-worker", "-benchout", "b.json"}, "-worker"},
		{"zero runs", []string{"-runs", "0"}, "-runs"},
		{"negative tolerance", []string{"-tolerance", "-0.1"}, "-tolerance"},
		{"analyze without report", []string{"-analyze", "t.jsonl"}, "-report"},
		{"analyze with scenario", []string{"-analyze", "t.jsonl", "-report", "out", "-scenario", "urban-gcc"}, "-scenario"},
		{"analyze with metrics", []string{"-analyze", "t.jsonl", "-report", "out", "-metrics", "m.json"}, "live scenario"},
		{"analyze with dist", []string{"-analyze", "t.jsonl", "-report", "out", "-dist", "2"}, "-dist"},
		{"fleet without scenario", []string{"-fleet", "10"}, "-fleet requires -scenario"},
		{"trace without scenario", []string{"-trace", "t.jsonl"}, "require -scenario"},
		{"metrics without scenario", []string{"-metrics", "m.json"}, "require -scenario"},
		{"report without scenario", []string{"-report", "out"}, "require -scenario"},
		{"compare without scenario", []string{"-compare", "b.json"}, "require -scenario"},
		{"dist without scenario", []string{"-dist", "4"}, "-dist requires -scenario"},
		{"negative dist", []string{"-scenario", "urban-gcc", "-dist", "-1"}, "-dist"},
		{"distchunk without dist", []string{"-scenario", "urban-gcc", "-distchunk", "2"}, "-distchunk requires -dist"},
		{"negative distchunk", []string{"-scenario", "urban-gcc", "-dist", "2", "-distchunk", "-3"}, "-distchunk"},
		{"runtimeout without dist", []string{"-scenario", "urban-gcc", "-runtimeout", "5s"}, "-runtimeout requires -dist"},
		{"dist with fleet", []string{"-scenario", "urban-gcc", "-dist", "2", "-fleet", "10"}, "fleet"},
		{"dist with benchout", []string{"-scenario", "urban-gcc", "-dist", "2", "-benchout", "b.json"}, "-benchout"},
		{"fleet with report", []string{"-scenario", "urban-gcc", "-fleet", "10", "-report", "out"}, "-report is not supported for fleet"},
		{"fleet with benchcompare", []string{"-scenario", "urban-gcc", "-fleet", "10", "-benchout", "b.json", "-benchcompare", "base.json"}, "fleet"},
		{"benchcompare without benchout", []string{"-scenario", "urban-gcc", "-benchcompare", "base.json"}, "-benchout"},
		{"benchcompare without scenario", []string{"-benchcompare", "base.json"}, "-benchcompare requires -scenario"},
		{"worker with serve", []string{"-worker", "-serve", "127.0.0.1:0"}, "-worker"},
		{"worker with pprof", []string{"-worker", "-pprof", "127.0.0.1:0"}, "-worker"},
		{"serve and pprof disagree", []string{"-serve", "127.0.0.1:7070", "-pprof", "127.0.0.1:7071"}, "one address"},
		{"negative servegrace", []string{"-serve", "127.0.0.1:0", "-servegrace", "-1s"}, "-servegrace"},
		{"servegrace without serve", []string{"-servegrace", "5s"}, "-servegrace requires -serve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			err = c.validate()
			if err == nil {
				t.Fatalf("validate(%v) accepted an illegal combination", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate(%v) = %q, want it to mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestValidateAcceptsLegalCombos pins the combinations the modes rely on.
func TestValidateAcceptsLegalCombos(t *testing.T) {
	cases := [][]string{
		{"-list"},
		{"-fig", "fig6", "-runs", "5", "-seed", "7"},
		{"-worker"},
		{"-worker", "-runs", "0"}, // worker mode ignores campaign knobs entirely
		{"-scenario", "urban-gcc", "-trace", "t.jsonl", "-metrics", "m.json", "-report", "out", "-compare", "b.json"},
		{"-scenario", "urban-gcc", "-fleet", "10/pf", "-metrics", "m.json"},
		{"-scenario", "urban-gcc", "-benchout", "b.json", "-benchcompare", "base.json"},
		{"-analyze", "t.jsonl", "-report", "out"},
		{"-scenario", "urban-gcc", "-dist", "4"},
		{"-scenario", "urban-gcc", "-dist", "4", "-distchunk", "2", "-runs", "32", "-runtimeout", "30s"},
		{"-scenario", "urban-gcc", "-dist", "4", "-trace", "t.jsonl", "-metrics", "m.json", "-report", "out", "-compare", "b.json"},
		{"-scenario", "urban-gcc", "-serve", "127.0.0.1:0"},
		{"-pprof", "127.0.0.1:0"},                                // legacy alias still works alone
		{"-serve", "127.0.0.1:7070", "-pprof", "127.0.0.1:7070"}, // agreeing addresses are one server
		{"-scenario", "urban-gcc", "-serve", "127.0.0.1:0", "-servegrace", "30s"},
		{"-scenario", "urban-gcc", "-pprof", "127.0.0.1:0", "-servegrace", "30s"}, // grace works through the alias
		{"-scenario", "urban-gcc", "-dist", "4", "-serve", "127.0.0.1:0"},         // ops server on the coordinator
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := mustParse(t, args...).validate(); err != nil {
				t.Fatalf("validate(%v): %v", args, err)
			}
		})
	}
}

// TestOpsAddr pins the -serve / -pprof aliasing: -serve wins when both are
// given (validate has already required them to agree), -pprof fills in for
// old command lines, empty means no server.
func TestOpsAddr(t *testing.T) {
	if got := mustParse(t).opsAddr(); got != "" {
		t.Errorf("default opsAddr = %q, want empty", got)
	}
	if got := mustParse(t, "-serve", "a:1").opsAddr(); got != "a:1" {
		t.Errorf("opsAddr with -serve = %q", got)
	}
	if got := mustParse(t, "-pprof", "b:2").opsAddr(); got != "b:2" {
		t.Errorf("opsAddr with -pprof = %q", got)
	}
	if got := mustParse(t, "-serve", "a:1", "-pprof", "a:1").opsAddr(); got != "a:1" {
		t.Errorf("opsAddr with both = %q", got)
	}
}

func TestValidateRunTimeoutBounds(t *testing.T) {
	c := mustParse(t, "-scenario", "urban-gcc", "-dist", "2")
	c.runTimeout = -time.Second
	if err := c.validate(); err == nil {
		t.Fatal("negative -runtimeout should be rejected")
	}
}
