package main

import "testing"

func TestRegistryConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry {
		if e.id == "" || e.desc == "" || e.run == nil {
			t.Errorf("incomplete registry entry %+v", e.id)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	// Every experiment in the package's All() set must be reachable from
	// the CLI: the counts must agree.
	const wantExperiments = 24 // 14 figures/tables + 3 ablations + 3 extensions + robustness + repair + bond + fleet
	if len(registry) != wantExperiments {
		t.Errorf("registry has %d experiments, want %d", len(registry), wantExperiments)
	}
}
