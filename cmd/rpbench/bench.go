package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rpivideo/internal/core"
	"rpivideo/internal/experiments"
)

// runBenchStats is the BENCH_run.json payload: raw event-loop throughput of
// one scenario, measured over untraced repetitions. The headline number is
// SimPerWall — simulated seconds executed per wall-clock second — because it
// is what bounds campaign turnaround and is comparable across scenarios of
// different lengths.
type runBenchStats struct {
	Scenario string `json:"scenario"`
	// DurationSeconds is the simulated length of each repetition (the
	// scenario's configured duration, or the -benchdur override).
	DurationSeconds float64 `json:"duration_seconds"`
	// Runs is the number of untraced repetitions timed.
	Runs int `json:"runs"`
	// SimSeconds is the total simulated time executed; WallSeconds the
	// wall-clock time it took.
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	SimPerWall  float64 `json:"sim_seconds_per_wall_second"`
	// AllocBytesPerRun and AllocsPerRun are the per-repetition allocation
	// volume and object count (runtime deltas averaged over the timed
	// repetitions).
	AllocBytesPerRun uint64 `json:"alloc_bytes_per_run"`
	AllocsPerRun     uint64 `json:"allocs_per_run"`
}

// benchScenario measures the untraced event-loop speed of a scenario, writes
// the stats to outPath, and, when comparePath is set, gates against the
// baseline's sim_seconds_per_wall_second. slow reports a gate failure
// (already printed); err covers everything else.
//
// The measurement deliberately disables tracing: the benchmark tracks the
// simulation hot path, and the -compare metrics gate separately pins that
// traced results stay byte-identical.
func benchScenario(sc experiments.Scenario, seed int64, dur time.Duration, minSeconds float64, outPath, comparePath string, tolerance float64) (slow bool, err error) {
	cfg := sc.Config
	cfg.Trace = false
	if dur > 0 {
		cfg.Duration = dur
	}
	if seed != 0 && seed != 1 {
		cfg.Seed = seed
	}
	if minSeconds <= 0 {
		minSeconds = 1.5
	}

	core.Run(cfg) // warm-up: page in code, grow pools, steady-state the GC

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	runs := 0
	start := time.Now()
	var wall time.Duration
	for {
		core.Run(cfg)
		runs++
		wall = time.Since(start)
		if wall.Seconds() >= minSeconds && runs >= 3 {
			break
		}
	}
	runtime.ReadMemStats(&after)

	st := runBenchStats{
		Scenario:        sc.Name,
		DurationSeconds: cfg.Duration.Seconds(),
		Runs:            runs,
		SimSeconds:      cfg.Duration.Seconds() * float64(runs),
		WallSeconds:     wall.Seconds(),
	}
	if st.WallSeconds > 0 {
		st.SimPerWall = st.SimSeconds / st.WallSeconds
	}
	st.AllocBytesPerRun = (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
	st.AllocsPerRun = (after.Mallocs - before.Mallocs) / uint64(runs)

	if err := writeFileWith(outPath, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(&st)
	}); err != nil {
		return false, err
	}
	fmt.Fprintf(os.Stderr, "rpbench: %s: %d runs, %.1f sim-s in %.2f wall-s = %.0f sim-s/wall-s, wrote %s\n",
		sc.Name, st.Runs, st.SimSeconds, st.WallSeconds, st.SimPerWall, outPath)

	if comparePath == "" {
		return false, nil
	}
	base, err := readRunBench(comparePath)
	if err != nil {
		return false, err
	}
	if base.Scenario != st.Scenario {
		return false, fmt.Errorf("benchcompare: baseline %s is for scenario %q, not %q", comparePath, base.Scenario, st.Scenario)
	}
	floor := base.SimPerWall * (1 - tolerance)
	if st.SimPerWall < floor {
		fmt.Fprintf(os.Stderr, "rpbench: perf regression: %.0f sim-s/wall-s is below the gate floor %.0f (baseline %.0f, tolerance %.2f)\n",
			st.SimPerWall, floor, base.SimPerWall, tolerance)
		return true, nil
	}
	fmt.Fprintf(os.Stderr, "rpbench: perf gate ok: %.0f sim-s/wall-s >= floor %.0f (baseline %.0f, tolerance %.2f)\n",
		st.SimPerWall, floor, base.SimPerWall, tolerance)
	return false, nil
}

// fleetBenchStats is the BENCH_fleet.json payload: throughput of a whole
// fleet execution. SimSeconds counts every UAV's simulated time (fleet size
// × duration × repetitions), so SimPerWall is directly comparable to the
// single-run BENCH_run.json number — it is the aggregate simulation volume
// the process sustains per wall-clock second.
type fleetBenchStats struct {
	Scenario        string  `json:"scenario"`
	FleetSize       int     `json:"fleet_size"`
	Scheduler       string  `json:"scheduler"`
	DurationSeconds float64 `json:"duration_seconds"`
	Runs            int     `json:"runs"`
	SimSeconds      float64 `json:"sim_seconds"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimPerWall      float64 `json:"sim_seconds_per_wall_second"`
}

// benchFleet measures full-fleet throughput (all three phases: attach
// replay, contention fold, contended runs) over repeated executions and
// writes the stats to outPath. Events are disabled: the benchmark tracks
// the simulation hot path, as benchScenario does for single runs.
func benchFleet(sc experiments.Scenario, seed int64, dur time.Duration, minSeconds float64, outPath string) error {
	cfg := sc.Config
	if dur > 0 {
		cfg.Duration = dur
	}
	if seed != 0 && seed != 1 {
		cfg.Seed = seed
	}
	if minSeconds <= 0 {
		minSeconds = 1.5
	}
	fc := core.FleetConfig{Config: cfg, Size: sc.Fleet, Sched: sc.Sched}
	runOnce := func() error {
		_, errs := core.RunFleet(fc)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := runOnce(); err != nil { // warm-up, as in benchScenario
		return err
	}
	runs := 0
	start := time.Now()
	var wall time.Duration
	for {
		if err := runOnce(); err != nil {
			return err
		}
		runs++
		wall = time.Since(start)
		if wall.Seconds() >= minSeconds && runs >= 2 {
			break
		}
	}

	st := fleetBenchStats{
		Scenario:        sc.Name,
		FleetSize:       sc.Fleet,
		Scheduler:       sc.Sched.String(),
		DurationSeconds: cfg.Duration.Seconds(),
		Runs:            runs,
		SimSeconds:      float64(sc.Fleet) * cfg.Duration.Seconds() * float64(runs),
		WallSeconds:     wall.Seconds(),
	}
	if st.WallSeconds > 0 {
		st.SimPerWall = st.SimSeconds / st.WallSeconds
	}
	if err := writeFileWith(outPath, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(&st)
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rpbench: fleet %s ×%d (%s): %d runs, %.0f sim-s in %.2f wall-s = %.0f sim-s/wall-s, wrote %s\n",
		sc.Name, st.FleetSize, st.Scheduler, st.Runs, st.SimSeconds, st.WallSeconds, st.SimPerWall, outPath)
	return nil
}

// readRunBench loads a BENCH_run.json baseline.
func readRunBench(path string) (runBenchStats, error) {
	var st runBenchStats
	f, err := os.Open(path)
	if err != nil {
		return st, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&st); err != nil {
		return st, fmt.Errorf("benchcompare: %s: %w", path, err)
	}
	return st, nil
}
