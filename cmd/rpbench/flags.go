package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"
)

// cliConfig is every rpbench flag, parsed into one struct so the legal
// flag combinations are decided in exactly one place (validate) instead of
// scattered through the mode dispatch.
type cliConfig struct {
	// Experiment mode.
	fig        string
	runs       int
	runsSet    bool // -runs was given explicitly (matters for -dist)
	seed       int64
	workers    int
	faults     string
	bondPolicy string
	list       bool

	// Scenario / observability mode.
	scenario  string
	fleetSpec string
	trace     string
	metrics   string
	report    string
	analyze   string
	compare   string
	tolerance float64

	// Benchmarks.
	bench          string
	benchCompare   string
	benchTolerance float64
	benchSeconds   float64
	benchDur       time.Duration

	// Live ops server: -serve is the address, -pprof its legacy alias,
	// servGrace how long the server outlives the workload so a scraper can
	// read the terminal status.
	serve      string
	pprof      string
	serveGrace time.Duration

	// Distributed campaigns.
	distWorkers int
	distChunk   int
	runTimeout  time.Duration
	worker      bool
}

// parseFlags parses args (not including the program name) into a cliConfig.
// It does not validate combinations; call validate next.
func parseFlags(args []string) (*cliConfig, error) {
	c := &cliConfig{}
	fs := flag.NewFlagSet("rpbench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.StringVar(&c.fig, "fig", "all", "experiment ID to run, or 'all'")
	fs.IntVar(&c.runs, "runs", 3, "seeded repetitions per configuration")
	fs.Int64Var(&c.seed, "seed", 1, "base seed")
	fs.IntVar(&c.workers, "workers", runtime.GOMAXPROCS(0),
		"concurrent campaign runs (results are identical at any setting)")
	fs.StringVar(&c.faults, "faults", "",
		"scripted fault schedule for the robust/repair/bond experiments: \"start+dur\" outages, \"start~dur\" loss fades, @p1/@p2 path scopes, e.g. \"45s+2s,70s~80ms/up\" or \"45s+2s@p1\"")
	fs.StringVar(&c.bondPolicy, "bond", "",
		"restrict the bond experiment to one scheduler policy (duplicate, failover, cheapest, spray); empty compares all four")
	fs.BoolVar(&c.list, "list", false, "list experiment and scenario IDs and exit")
	fs.StringVar(&c.scenario, "scenario", "", "run a named observability scenario instead of experiments")
	fs.StringVar(&c.fleetSpec, "fleet", "", "run the scenario as a fleet of N UAVs on one shared cell map: \"N\" or \"N/rr|pf\" (requires -scenario; overrides the scenario's own fleet setting)")
	fs.StringVar(&c.trace, "trace", "", "write the scenario's event trace as JSONL to this file (requires -scenario)")
	fs.StringVar(&c.metrics, "metrics", "", "write the scenario's campaign metrics as JSON to this file (requires -scenario)")
	fs.StringVar(&c.report, "report", "", "write an analyzer report bundle (series/epochs/outages CSV + summary.json) to this directory (requires -scenario or -analyze)")
	fs.StringVar(&c.analyze, "analyze", "", "replay a JSONL trace file through the analyzer instead of simulating (use with -report)")
	fs.StringVar(&c.compare, "compare", "", "regression gate: diff the scenario's campaign metrics against this baseline registry JSON, exit 1 on drift (requires -scenario)")
	fs.Float64Var(&c.tolerance, "tolerance", 0, "default relative drift tolerance for -compare (campaigns are deterministic, so 0 = exact is the expected gate)")
	fs.StringVar(&c.bench, "benchout", "", "write benchmark stats as JSON: with -scenario, untraced event-loop speed (BENCH_run.json); otherwise campaign stats after the experiments run")
	fs.StringVar(&c.benchCompare, "benchcompare", "", "perf regression gate: compare the -benchout speed against this baseline BENCH_run.json, exit 1 when sim_seconds_per_wall_second falls below baseline*(1-benchtolerance) (requires -scenario -benchout)")
	fs.Float64Var(&c.benchTolerance, "benchtolerance", 0.5, "relative slowdown tolerated by -benchcompare (0.5 = fail below half the baseline speed; generous because CI machines vary)")
	fs.Float64Var(&c.benchSeconds, "benchseconds", 1.5, "minimum wall-clock seconds of untraced repetitions for the -scenario benchmark")
	fs.DurationVar(&c.benchDur, "benchdur", 30*time.Second, "simulated duration of each benchmark repetition (0 = the scenario's own duration); the default stretches short scenarios to steady state so the metric reflects event-loop throughput, not setup amortization")
	fs.StringVar(&c.serve, "serve", "", "serve the live ops endpoints on this address while running: Prometheus /metrics, /status JSON, /events SSE, plus pprof and /debug/runtime-metrics (use 127.0.0.1:0 for an ephemeral port; the bound address is printed)")
	fs.StringVar(&c.pprof, "pprof", "", "alias for -serve (the old name; the address now also carries /metrics, /status and /events)")
	fs.DurationVar(&c.serveGrace, "servegrace", 0, "keep the -serve ops server up this long after the workload completes, so a scraper can collect the terminal /status and /metrics (0 = shut down immediately)")
	fs.IntVar(&c.distWorkers, "dist", 0, "shard the scenario campaign across N local worker subprocesses with leased chunks and crash recovery (requires -scenario; campaign size is the scenario's runs unless -runs is given)")
	fs.IntVar(&c.distChunk, "distchunk", 0, "runs per leased chunk for -dist (0 = auto: runs/(4·workers), at least 1)")
	fs.DurationVar(&c.runTimeout, "runtimeout", 0, "per-run wall-clock watchdog inside -dist workers: a run exceeding this becomes that run's recorded error (0 = off)")
	fs.BoolVar(&c.worker, "worker", false, "run as a distributed campaign worker speaking the dist protocol on stdin/stdout (internal: rpbench -dist spawns these)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "runs" {
			c.runsSet = true
		}
	})
	return c, nil
}

// validate rejects illegal flag combinations. Every rule lives here — the
// mode dispatch in main assumes a validated config and never re-checks.
func (c *cliConfig) validate() error {
	if c.worker {
		// The worker owns stdin/stdout for the protocol; any other mode
		// flag indicates a confused invocation, not a tolerable extra. The
		// ops server belongs on the coordinator — workers are spawned
		// subprocesses whose addresses nobody knows.
		switch {
		case c.scenario != "", c.distWorkers != 0, c.analyze != "", c.list,
			c.fleetSpec != "", c.trace != "", c.metrics != "", c.report != "",
			c.compare != "", c.bench != "", c.benchCompare != "", c.fig != "all",
			c.serve != "", c.pprof != "":
			return errors.New("-worker is the distributed-campaign subprocess entrypoint and takes no other mode flags")
		}
		return nil
	}
	if c.runs < 1 {
		return errors.New("-runs must be at least 1")
	}
	if c.tolerance < 0 {
		return errors.New("-tolerance must not be negative")
	}
	if c.serve != "" && c.pprof != "" && c.serve != c.pprof {
		return errors.New("-serve and -pprof are the same server (the latter is the legacy alias); give one address, not two")
	}
	if c.serveGrace < 0 {
		return errors.New("-servegrace must not be negative")
	}
	if c.serveGrace != 0 && c.opsAddr() == "" {
		return errors.New("-servegrace requires -serve (there is no server to hold open)")
	}

	if c.analyze != "" {
		if c.report == "" {
			return errors.New("-analyze needs -report <dir> for the bundle")
		}
		if c.scenario != "" {
			return errors.New("-analyze replays a trace file and cannot be combined with -scenario")
		}
		if c.trace != "" || c.metrics != "" || c.compare != "" || c.bench != "" || c.benchCompare != "" {
			return errors.New("-analyze supports only -report (the other exports need a live scenario run)")
		}
		if c.distWorkers != 0 {
			return errors.New("-dist shards live scenario campaigns and cannot be combined with -analyze")
		}
		return nil
	}

	if c.scenario == "" {
		if c.fleetSpec != "" {
			return errors.New("-fleet requires -scenario (use -list for scenario IDs)")
		}
		if c.trace != "" || c.metrics != "" || c.report != "" || c.compare != "" {
			return errors.New("-trace/-metrics/-report/-compare require -scenario (use -list for scenario IDs)")
		}
		if c.distWorkers != 0 {
			return errors.New("-dist requires -scenario (use -list for scenario IDs)")
		}
		if c.benchCompare != "" {
			return errors.New("-benchcompare requires -scenario -benchout")
		}
	}

	if c.distWorkers < 0 {
		return errors.New("-dist needs a positive worker count")
	}
	if c.distChunk != 0 && c.distWorkers == 0 {
		return errors.New("-distchunk requires -dist")
	}
	if c.distChunk < 0 {
		return errors.New("-distchunk must not be negative")
	}
	if c.runTimeout != 0 && c.distWorkers == 0 {
		return errors.New("-runtimeout requires -dist (serial scenario runs are watchdogged by the campaign engine)")
	}
	if c.runTimeout < 0 {
		return errors.New("-runtimeout must not be negative")
	}
	if c.distWorkers > 0 {
		if c.fleetSpec != "" {
			return errors.New("-dist cannot shard a fleet (a fleet shares one cell map; chunks are independent runs)")
		}
		if c.bench != "" || c.benchCompare != "" {
			return errors.New("-benchout/-benchcompare measure the in-process event loop and cannot be combined with -dist")
		}
	}

	if c.fleetSpec != "" {
		if c.report != "" {
			return errors.New("-report is not supported for fleet runs (the analyzer consumes per-run traces)")
		}
		if c.benchCompare != "" {
			return errors.New("-benchcompare is not supported for fleet runs (the fleet bench payload has its own schema)")
		}
	}

	if c.benchCompare != "" && c.bench == "" {
		return errors.New("-benchcompare requires -benchout")
	}
	return nil
}

// opsAddr resolves the ops-server listen address: -serve, falling back to
// its legacy alias -pprof. Empty means no server.
func (c *cliConfig) opsAddr() string {
	if c.serve != "" {
		return c.serve
	}
	return c.pprof
}
