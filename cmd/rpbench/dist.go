package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"

	"rpivideo/internal/dist"
	"rpivideo/internal/experiments"
	"rpivideo/internal/obs"
	"rpivideo/internal/obs/analyze"
)

// runWorker is the -worker entrypoint: speak the dist protocol on
// stdin/stdout until the coordinator closes the stream.
func runWorker() error {
	return dist.Serve(os.Stdin, os.Stdout, experiments.DistRunner{})
}

// runDistScenario shards a scenario campaign across c.distWorkers rpbench
// subprocesses (each re-exec'd with -worker) and writes the same exports as
// the serial path, byte-identically. The campaign size is the scenario's own
// Runs unless -runs was given explicitly. sink, when non-nil, receives the
// coordinator's live lease/straggler status and, after the fold, the merged
// campaign registry.
func runDistScenario(c *cliConfig, sc experiments.Scenario, sink obs.StatusSink, exp scenarioExports) (drifted bool, err error) {
	seed := c.seed
	if seed == 1 {
		seed = 0 // default flag value: keep the scenario's pinned seed
	}
	runs := sc.Runs
	if c.runsSet {
		runs = c.runs
	}
	spec := experiments.DistSpec{Scenario: sc.Name, Seed: seed, RunTimeout: c.runTimeout}
	rawSpec, err := json.Marshal(spec)
	if err != nil {
		return false, err
	}

	exe, err := os.Executable()
	if err != nil {
		return false, fmt.Errorf("locating the rpbench binary for -worker re-exec: %w", err)
	}
	peers, err := dist.StartProcs(c.distWorkers, func(i int) *exec.Cmd {
		return exec.Command(exe, "-worker")
	})
	if err != nil {
		return false, err
	}

	reg := obs.NewRegistry()
	out, err := dist.Run(rawSpec, dist.Config{
		Runs:      runs,
		ChunkSize: c.distChunk,
		Metrics:   reg,
		Events:    logDistEvent,
		Status:    sink,
	}, peers)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(os.Stderr,
		"rpbench: dist %d workers: %d chunks, %d leases granted (%d reissued), %d shards, %d workers lost, %d stragglers killed, %d chunks failed\n",
		c.distWorkers, reg.Counter("dist_chunks"), reg.Counter("dist_leases_granted"),
		reg.Counter("dist_leases_reissued"), reg.Counter("dist_shards_received"),
		reg.Counter("dist_workers_lost"), reg.Counter("dist_stragglers_killed"),
		reg.Counter("dist_chunks_failed"))
	if err := out.Err(); err != nil {
		return false, err
	}
	if sink != nil {
		// The coordinator's own fault-handling counters (leases, reissues,
		// stragglers) join the live surface alongside the campaign fold.
		sink.ObserveRun(reg)
	}
	failed := 0
	for run, rerr := range out.RunErrs {
		if rerr != nil {
			failed++
			fmt.Fprintf(os.Stderr, "rpbench: run %d failed: %v\n", run, rerr)
		}
	}
	if failed > 0 {
		return false, fmt.Errorf("%d of %d runs failed", failed, runs)
	}

	camp, err := experiments.FoldDistShards(spec, out)
	if err != nil {
		return false, err
	}
	if sink != nil {
		// Shard payloads are opaque to the coordinator, so per-run metrics
		// arrive only now, as the folded campaign registry.
		sink.ObserveRun(camp.Registry)
	}
	if exp.trace != "" {
		if err := writeFileWith(exp.trace, func(f *os.File) error {
			_, err := f.Write(camp.Trace)
			return err
		}); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote trace %s\n", exp.trace)
	}
	if exp.metrics != "" {
		if err := writeFileWith(exp.metrics, func(f *os.File) error {
			return camp.Registry.WriteJSON(f)
		}); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote metrics %s\n", exp.metrics)
	}
	if exp.report != "" {
		// The folded trace is byte-identical to a live serial trace, and a
		// replayed bundle is byte-identical to a live one, so replaying the
		// fold gives exactly the serial -report output.
		runsMeta, err := obs.ReadJSONL(bytes.NewReader(camp.Trace))
		if err != nil {
			return false, err
		}
		if err := analyze.WriteBundle(exp.report, analyze.Trace(runsMeta)); err != nil {
			return false, err
		}
		fmt.Fprintf(os.Stderr, "rpbench: wrote report bundle %s\n", exp.report)
	}
	if exp.compare != "" {
		f, err := os.Open(exp.compare)
		if err != nil {
			return false, err
		}
		base, err := obs.ReadRegistryJSON(f)
		f.Close()
		if err != nil {
			return false, err
		}
		drifts := obs.CompareRegistries(base, camp.Registry, obs.Tolerance{Default: exp.tolerance})
		for _, d := range drifts {
			fmt.Fprintln(os.Stderr, "rpbench: drift:", d)
		}
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "rpbench: %d metric(s) drifted from %s\n", len(drifts), exp.compare)
			drifted = true
		} else {
			fmt.Fprintf(os.Stderr, "rpbench: metrics match baseline %s\n", exp.compare)
		}
	}
	s := camp.Summary
	fmt.Printf("scenario %s: %d runs, %d packets sent, %d delivered, %d frames played, %d skipped\n",
		sc.Name, s.Runs, s.PacketsSent, s.PacketsDelivered, s.FramesPlayed, s.FramesSkipped)
	return drifted, nil
}

// logDistEvent surfaces the coordinator's notable fault-handling decisions
// on stderr; routine grants and completions stay quiet.
func logDistEvent(e dist.Event) {
	switch e.Kind {
	case dist.EvWorkerLost, dist.EvLeaseExpired, dist.EvStragglerKilled, dist.EvChunkFailed, dist.EvRunError, dist.EvChunkDuplicate:
		fmt.Fprintf(os.Stderr, "rpbench: dist: %s\n", e)
	}
}
