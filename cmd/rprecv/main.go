// Command rprecv receives the rpsend RTP stream over UDP, reassembles
// frames with the same depacketizer as the simulated campaigns, and returns
// transport-wide congestion control feedback every 50 ms.
//
//	rprecv -listen :5600
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"rpivideo/internal/rtp"
)

func main() {
	listen := flag.String("listen", ":5600", "listen address")
	flag.Parse()

	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		log.Fatalf("rprecv: resolve: %v", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		log.Fatalf("rprecv: listen: %v", err)
	}
	defer conn.Close()
	fmt.Println("rprecv: listening on", conn.LocalAddr())

	var (
		mu       sync.Mutex
		rec      = rtp.NewTWCCRecorder(1, 0x1234)
		depkt    = rtp.NewDepacketizer()
		peer     *net.UDPAddr
		packets  int
		bytes    int
		frames   int
		lastSeen = map[uint32]bool{}
	)
	start := time.Now()

	// Feedback loop.
	go func() {
		for range time.Tick(50 * time.Millisecond) {
			mu.Lock()
			fb := rec.Flush()
			target := peer
			mu.Unlock()
			if fb == nil || target == nil {
				continue
			}
			buf, err := fb.Marshal()
			if err != nil {
				continue
			}
			if _, err := conn.WriteToUDP(buf, target); err != nil {
				return
			}
		}
	}()

	// Stats loop.
	go func() {
		for range time.Tick(time.Second) {
			mu.Lock()
			fmt.Printf("t=%4.0fs %7d pkts %8.2f MB %6d frames complete\n",
				time.Since(start).Seconds(), packets, float64(bytes)/1e6, frames)
			mu.Unlock()
		}
	}()

	buf := make([]byte, 64<<10)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			log.Fatalf("rprecv: read: %v", err)
		}
		var p rtp.Packet
		if err := p.Unmarshal(buf[:n]); err != nil {
			continue
		}
		at := time.Since(start)
		mu.Lock()
		peer = from
		packets++
		bytes += n
		if tseq, ok := p.Header.TransportSeq(); ok {
			rec.Record(tseq, at)
		}
		if fs, err := depkt.Push(&p, at); err == nil && fs.Complete() && !lastSeen[fs.Num] {
			lastSeen[fs.Num] = true
			frames++
			depkt.Delete(fs.Num)
			if len(lastSeen) > 10000 {
				lastSeen = map[uint32]bool{}
			}
		}
		mu.Unlock()
	}
}
