// Command rpsend streams the synthetic video workload over real UDP using
// the same RTP packetization and congestion controllers as the simulated
// campaigns. Pair it with rprecv, which returns transport-wide congestion
// control feedback:
//
//	rprecv -listen :5600            # terminal 1
//	rpsend -to 127.0.0.1:5600 -cc gcc -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"rpivideo/internal/cc"
	"rpivideo/internal/gcc"
	"rpivideo/internal/rtp"
	"rpivideo/internal/video"

	"math/rand"
)

func main() {
	to := flag.String("to", "127.0.0.1:5600", "receiver address")
	ccName := flag.String("cc", "gcc", "rate control: static or gcc")
	staticRate := flag.Float64("rate", 8e6, "static bitrate (bits/s)")
	duration := flag.Duration("duration", 30*time.Second, "stream duration")
	mtu := flag.Int("mtu", 1200, "MTU")
	flag.Parse()

	conn, err := net.Dial("udp", *to)
	if err != nil {
		log.Fatalf("rpsend: dial: %v", err)
	}
	defer conn.Close()

	var ctrl cc.Controller
	switch *ccName {
	case "static":
		ctrl = cc.NewStatic(*staticRate)
	case "gcc":
		ctrl = gcc.New(gcc.Config{})
	default:
		fmt.Fprintf(os.Stderr, "rpsend: unknown cc %q\n", *ccName)
		os.Exit(2)
	}

	var (
		mu    sync.Mutex
		queue cc.SendQueue
		pacer cc.Pacer
		sent  = map[uint16]cc.SentPacket{} // by transport seq
	)
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }

	enc := video.NewEncoder(video.DefaultEncoderConfig(), ctrl.TargetBitrate(0), rand.New(rand.NewSource(1)))
	pkt := rtp.NewPacketizer(0x1234, 96, *mtu)

	// Feedback listener.
	go func() {
		buf := make([]byte, 2048)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			var fb rtp.TWCC
			if err := fb.Unmarshal(buf[:n]); err != nil {
				continue
			}
			mu.Lock()
			acks := make([]cc.Ack, 0, len(fb.Packets))
			for i, p := range fb.Packets {
				tseq := fb.BaseSeq + uint16(i)
				a := cc.Ack{TransportSeq: tseq, Received: p.Received, ArrivalTime: p.At}
				if rec, ok := sent[tseq]; ok {
					a.Size, a.SendTime = rec.Size, rec.SendTime
					delete(sent, tseq)
				}
				acks = append(acks, a)
			}
			ctrl.OnFeedback(now(), acks)
			mu.Unlock()
		}
	}()

	// Encoder clock.
	frameTicker := time.NewTicker(time.Second / 30)
	defer frameTicker.Stop()
	// Pacer clock.
	sendTicker := time.NewTicker(time.Millisecond)
	defer sendTicker.Stop()
	// Stats clock.
	statTicker := time.NewTicker(time.Second)
	defer statTicker.Stop()

	deadline := time.After(*duration)
	bytesSent, pktsSent := 0, 0
	for {
		select {
		case <-deadline:
			fmt.Printf("done: %d packets, %.1f MB\n", pktsSent, float64(bytesSent)/1e6)
			return
		case <-frameTicker.C:
			mu.Lock()
			enc.SetTarget(ctrl.TargetBitrate(now()))
			f := enc.NextFrame(now())
			for _, p := range pkt.Packetize(rtp.FrameInfo{
				Num: f.Num, EncodeTime: f.EncodeTime, Keyframe: f.Keyframe,
				Size: f.Size, RTPTime: uint32(uint64(f.Num) * rtp.VideoClockRate / 30),
			}) {
				queue.Push(cc.Item{Data: p, Size: p.MarshalSize(), Enqueued: now(), FrameNum: f.Num})
			}
			mu.Unlock()
		case <-sendTicker.C:
			mu.Lock()
			t := now()
			for {
				it, ok := queue.Peek()
				if !ok || !ctrl.CanSend(t, it.Size) || !pacer.Idle(t) {
					break
				}
				queue.Pop()
				pacer.Next(t, it.Size, ctrl.PacingRate(t))
				p := it.Data.(*rtp.Packet)
				wire, err := p.Marshal()
				if err != nil {
					log.Printf("rpsend: marshal: %v", err)
					continue
				}
				tseq, _ := p.Header.TransportSeq()
				sent[tseq] = cc.SentPacket{TransportSeq: tseq, Size: it.Size, SendTime: t}
				if _, err := conn.Write(wire); err != nil {
					log.Fatalf("rpsend: write: %v", err)
				}
				bytesSent += len(wire)
				pktsSent++
			}
			mu.Unlock()
		case <-statTicker.C:
			mu.Lock()
			fmt.Printf("t=%4.0fs target %5.1f Mbps, queued %d pkts, sent %d\n",
				now().Seconds(), ctrl.TargetBitrate(now())/1e6, queue.Len(), pktsSent)
			mu.Unlock()
		}
	}
}
