package rpivideo_test

import (
	"testing"
	"time"

	"rpivideo"
)

func TestPublicAPIQuickstart(t *testing.T) {
	r := rpivideo.Run(rpivideo.Config{
		Env:      rpivideo.Urban,
		Air:      true,
		CC:       rpivideo.GCC,
		Seed:     1,
		Duration: 30 * time.Second,
	})
	if r.GoodputMean() <= 0 {
		t.Error("no goodput")
	}
	if r.FramesPlayed == 0 {
		t.Error("no frames played")
	}
}

func TestPublicAPICampaign(t *testing.T) {
	rs := rpivideo.RunCampaign(rpivideo.Config{
		Env:      rpivideo.Rural,
		Op:       rpivideo.P2,
		Air:      true,
		CC:       rpivideo.Static,
		Seed:     2,
		Duration: 20 * time.Second,
	}, 2)
	m := rpivideo.Merge(rs)
	if m.Duration != 40*time.Second {
		t.Errorf("merged duration = %v", m.Duration)
	}
}

func TestPublicAPIPing(t *testing.T) {
	r := rpivideo.Run(rpivideo.Config{
		Env:      rpivideo.Urban,
		Air:      true,
		Workload: rpivideo.Ping,
		Seed:     3,
		Duration: 60 * time.Second,
	})
	if r.RTTms.N() == 0 {
		t.Error("no RTT samples from the ping workload")
	}
}
