package rpivideo_test

import (
	"testing"
	"time"

	"rpivideo"
	"rpivideo/internal/experiments"
)

// Each benchmark regenerates one table or figure of the paper's evaluation
// (see DESIGN.md §3 for the experiment index) on the deterministic
// simulator. Campaigns are memoized across experiments exactly as in
// cmd/rpbench, so the first benchmark touching a campaign set pays its full
// regeneration cost and later ones reuse it (their ns/op reflects the
// incremental cost; call experiments.ResetCache for cold-start numbers).
// Shape checks against the paper's claims are reported as the
// `shape-fails` metric (asserted strictly, with more repetitions, by
// TestAllExperimentsSatisfyShapeChecks in internal/experiments).
func benchReport(b *testing.B, run func(experiments.Options) *experiments.Report) {
	b.Helper()
	b.ReportAllocs()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = run(experiments.Options{Runs: 1, Seed: 1})
	}
	failed := rep.FailedChecks()
	for _, f := range failed {
		b.Logf("shape check failed (single-seed run): %s", f)
	}
	b.ReportMetric(float64(len(failed)), "shape-fails")
}

// BenchmarkFig4aHandoverFrequency regenerates Fig. 4(a): handover frequency
// in the air vs on the ground, urban vs rural.
func BenchmarkFig4aHandoverFrequency(b *testing.B) {
	benchReport(b, experiments.Fig4aHandoverFrequency)
}

// BenchmarkFig4bHandoverExecutionTime regenerates Fig. 4(b): HET
// distributions with the 3GPP 49.5 ms threshold and the aerial outliers.
func BenchmarkFig4bHandoverExecutionTime(b *testing.B) {
	benchReport(b, experiments.Fig4bHandoverExecutionTime)
}

// BenchmarkFig5OneWayLatencyCDF regenerates Fig. 5: one-way latency CDFs on
// the ground and in the air.
func BenchmarkFig5OneWayLatencyCDF(b *testing.B) {
	benchReport(b, experiments.Fig5OneWayLatency)
}

// BenchmarkFig6Goodput regenerates Fig. 6: goodput of static/GCC/SCReAM in
// both environments.
func BenchmarkFig6Goodput(b *testing.B) {
	benchReport(b, experiments.Fig6Goodput)
}

// BenchmarkFig7aFPS regenerates Fig. 7(a): the FPS distributions.
func BenchmarkFig7aFPS(b *testing.B) {
	benchReport(b, experiments.Fig7aFPS)
}

// BenchmarkFig7bSSIM regenerates Fig. 7(b): the SSIM distributions.
func BenchmarkFig7bSSIM(b *testing.B) {
	benchReport(b, experiments.Fig7bSSIM)
}

// BenchmarkFig7cPlaybackLatency regenerates Fig. 7(c): the playback latency
// CDFs with the 300 ms RP threshold.
func BenchmarkFig7cPlaybackLatency(b *testing.B) {
	benchReport(b, experiments.Fig7cPlaybackLatency)
}

// BenchmarkFig8HandoverTimeline regenerates Fig. 8: a single flight's
// latency/handover timeline.
func BenchmarkFig8HandoverTimeline(b *testing.B) {
	benchReport(b, experiments.Fig8HandoverTimeline)
}

// BenchmarkFig9LatencyRatio regenerates Fig. 9: max/min latency ratios in
// the windows before and after handovers.
func BenchmarkFig9LatencyRatio(b *testing.B) {
	benchReport(b, experiments.Fig9LatencyRatio)
}

// BenchmarkFig10OperatorCapacity regenerates Fig. 10: P1 vs P2 rural
// throughput and handover frequency.
func BenchmarkFig10OperatorCapacity(b *testing.B) {
	benchReport(b, experiments.Fig10OperatorCapacity)
}

// BenchmarkStallRates regenerates the §4.2.1 stall-rate table.
func BenchmarkStallRates(b *testing.B) {
	benchReport(b, experiments.TableStallRates)
}

// BenchmarkRampUp regenerates the §4.2.1 ramp-up comparison (GCC ≈12 s,
// SCReAM ≈25 s to 25 Mbps).
func BenchmarkRampUp(b *testing.B) {
	benchReport(b, experiments.TableRampUp)
}

// BenchmarkFig12OperatorVideo regenerates Fig. 12 (Appendix A.3): video
// performance per operator in the rural environment.
func BenchmarkFig12OperatorVideo(b *testing.B) {
	benchReport(b, experiments.Fig12OperatorVideo)
}

// BenchmarkFig13RTTbyAltitude regenerates Fig. 13: probe RTT by altitude
// bucket without cross traffic.
func BenchmarkFig13RTTbyAltitude(b *testing.B) {
	benchReport(b, experiments.Fig13RTTByAltitude)
}

// BenchmarkScreamAckWindow regenerates the §4.2.1 ablation: the RFC 8888
// ack-window defect (64 vs 256 packets).
func BenchmarkScreamAckWindow(b *testing.B) {
	benchReport(b, experiments.AblationScreamAckWindow)
}

// BenchmarkJitterBufferAblation regenerates the §4.2/A.4 ablation: jitter
// buffer sizing and drop-on-latency.
func BenchmarkJitterBufferAblation(b *testing.B) {
	benchReport(b, experiments.AblationJitterBuffer)
}

// BenchmarkEstimatorAblation compares GCC's Kalman and trendline delay
// estimators in the urban cell.
func BenchmarkEstimatorAblation(b *testing.B) {
	benchReport(b, experiments.AblationEstimator)
}

// BenchmarkExtDAPS evaluates the §5 DAPS make-before-break handover
// extension against the break-before-make baseline.
func BenchmarkExtDAPS(b *testing.B) {
	benchReport(b, experiments.ExtDAPS)
}

// BenchmarkExtAQM evaluates the §5 bufferbloat mitigation (CoDel on the
// bottleneck buffer).
func BenchmarkExtAQM(b *testing.B) {
	benchReport(b, experiments.ExtAQM)
}

// BenchmarkExtMultipath evaluates the §5 multipath-duplication extension
// over both operators.
func BenchmarkExtMultipath(b *testing.B) {
	benchReport(b, experiments.ExtMultipath)
}

// benchCampaign measures the campaign engine itself on a 20-run sweep of
// short urban flights. Compare the Serial and Parallel variants to see the
// worker-pool speedup on a multi-core machine; both produce byte-identical
// merged results (locked in by core's determinism test).
func benchCampaign(b *testing.B, workers int) {
	b.ReportAllocs()
	cfg := rpivideo.Config{Env: rpivideo.Urban, Air: true, CC: rpivideo.Static, Seed: 1, Duration: 20 * time.Second}
	for i := 0; i < b.N; i++ {
		_, errs := rpivideo.RunCampaignWithOptions(cfg, 20, rpivideo.CampaignOptions{Workers: workers})
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCampaign20RunsSerial runs the 20-run campaign on one worker.
func BenchmarkCampaign20RunsSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaign20RunsParallel runs the same campaign with one worker
// per logical CPU.
func BenchmarkCampaign20RunsParallel(b *testing.B) { benchCampaign(b, 0) }

// benchRunTrace measures a single short video run with tracing off or on.
// Compare the two to see the observability overhead: the disabled path is
// one nil check per instrumentation point, the enabled path appends a flat
// event value into a preallocated ring (TraceCap), so neither allocates on
// the packet path (locked in by link's zero-alloc test).
func benchRunTrace(b *testing.B, trace bool) {
	b.ReportAllocs()
	cfg := rpivideo.Config{
		Env:      rpivideo.Urban,
		CC:       rpivideo.GCC,
		Seed:     1,
		Duration: 10 * time.Second,
		Trace:    trace,
		TraceCap: 4096,
	}
	for i := 0; i < b.N; i++ {
		res := rpivideo.Run(cfg)
		if trace && res.Trace.Len() == 0 {
			b.Fatal("traced run produced no events")
		}
	}
}

// BenchmarkRunTraceDisabled is the baseline: the same run with the tracer
// compiled in but switched off.
func BenchmarkRunTraceDisabled(b *testing.B) { benchRunTrace(b, false) }

// BenchmarkRunTraceEnabled runs with the ring tracer capturing every
// subsystem's events.
func BenchmarkRunTraceEnabled(b *testing.B) { benchRunTrace(b, true) }
