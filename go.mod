module rpivideo

go 1.22
